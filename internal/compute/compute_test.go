package compute_test

import (
	"math"
	"math/rand"
	"testing"

	"sagabench/internal/compute"
	"sagabench/internal/ds"
	_ "sagabench/internal/ds/all"
	"sagabench/internal/graph"
)

// refGraph is a simple adjacency-map graph for reference algorithms.
type refGraph struct {
	out [][]graph.Neighbor
	in  [][]graph.Neighbor
}

func buildRef(o *graph.Oracle) *refGraph {
	n := o.NumNodes()
	r := &refGraph{out: make([][]graph.Neighbor, n), in: make([][]graph.Neighbor, n)}
	for v := 0; v < n; v++ {
		r.out[v] = o.Out(graph.NodeID(v))
		r.in[v] = o.In(graph.NodeID(v))
	}
	return r
}

const testInf = math.MaxFloat64

// refBFS computes exact hop distances from src by sequential BFS.
func refBFS(g *refGraph, src int) []float64 {
	d := make([]float64, len(g.out))
	for i := range d {
		d[i] = math.Inf(1)
	}
	if src >= len(g.out) {
		return d
	}
	d[src] = 0
	q := []int{src}
	for len(q) > 0 {
		u := q[0]
		q = q[1:]
		for _, nb := range g.out[u] {
			if math.IsInf(d[nb.ID], 1) {
				d[nb.ID] = d[u] + 1
				q = append(q, int(nb.ID))
			}
		}
	}
	return d
}

// refSSSP is sequential Dijkstra-without-heap (Bellman-Ford queue), exact
// for positive weights.
func refSSSP(g *refGraph, src int) []float64 {
	d := make([]float64, len(g.out))
	for i := range d {
		d[i] = math.Inf(1)
	}
	if src >= len(g.out) {
		return d
	}
	d[src] = 0
	q := []int{src}
	for len(q) > 0 {
		u := q[0]
		q = q[1:]
		for _, nb := range g.out[u] {
			if nd := d[u] + float64(nb.Weight); nd < d[nb.ID] {
				d[nb.ID] = nd
				q = append(q, int(nb.ID))
			}
		}
	}
	return d
}

// refSSWP is sequential widest-path label correcting.
func refSSWP(g *refGraph, src int) []float64 {
	w := make([]float64, len(g.out))
	if src >= len(g.out) {
		return w
	}
	w[src] = math.Inf(1)
	q := []int{src}
	for len(q) > 0 {
		u := q[0]
		q = q[1:]
		for _, nb := range g.out[u] {
			nw := math.Min(w[u], float64(nb.Weight))
			if nw > w[nb.ID] {
				w[nb.ID] = nw
				q = append(q, int(nb.ID))
			}
		}
	}
	return w
}

// refCC assigns each vertex the minimum vertex ID reachable over edges in
// either direction (weak connectivity labels).
func refCC(g *refGraph) []float64 {
	n := len(g.out)
	label := make([]float64, n)
	seen := make([]bool, n)
	for v := range label {
		label[v] = float64(v)
	}
	for v := 0; v < n; v++ {
		if seen[v] {
			continue
		}
		// v is the smallest unseen ID of its component.
		comp := []int{v}
		seen[v] = true
		for len(comp) > 0 {
			u := comp[len(comp)-1]
			comp = comp[:len(comp)-1]
			label[u] = float64(v)
			for _, nb := range g.out[u] {
				if !seen[nb.ID] {
					seen[nb.ID] = true
					comp = append(comp, int(nb.ID))
				}
			}
			for _, nb := range g.in[u] {
				if !seen[nb.ID] {
					seen[nb.ID] = true
					comp = append(comp, int(nb.ID))
				}
			}
		}
	}
	return label
}

// refMC computes the fixpoint of v.value = max(v, max over in-neighbors).
func refMC(g *refGraph) []float64 {
	n := len(g.out)
	val := make([]float64, n)
	for v := range val {
		val[v] = float64(v)
	}
	changed := true
	for changed {
		changed = false
		for v := 0; v < n; v++ {
			best := val[v]
			for _, nb := range g.in[v] {
				if val[nb.ID] > best {
					best = val[nb.ID]
				}
			}
			if best != val[v] {
				val[v] = best
				changed = true
			}
		}
	}
	return val
}

func affectedOf(b graph.Batch) []graph.NodeID {
	seen := map[graph.NodeID]bool{}
	var out []graph.NodeID
	for _, e := range b {
		if !seen[e.Src] {
			seen[e.Src] = true
			out = append(out, e.Src)
		}
		if !seen[e.Dst] {
			seen[e.Dst] = true
			out = append(out, e.Dst)
		}
	}
	return out
}

func randBatches(seed int64, numBatches, batchSize, numNodes int) []graph.Batch {
	rng := rand.New(rand.NewSource(seed))
	batches := make([]graph.Batch, numBatches)
	for b := range batches {
		batch := make(graph.Batch, batchSize)
		for i := range batch {
			src := graph.NodeID(rng.Intn(numNodes))
			dst := graph.NodeID(rng.Intn(numNodes))
			// Weight is a pure function of the endpoints so duplicate
			// edges ingested in nondeterministic parallel order agree
			// with the sequentially built oracle.
			w := graph.Weight((uint32(src)*7+uint32(dst)*13)%20) + 1
			batch[i] = graph.Edge{Src: src, Dst: dst, Weight: w}
		}
		batches[b] = batch
	}
	return batches
}

func valsEqual(t *testing.T, what string, got, want []float64, tol float64) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d values, want %d", what, len(got), len(want))
	}
	for v := range got {
		g, w := got[v], want[v]
		if math.IsInf(g, 1) && math.IsInf(w, 1) {
			continue
		}
		if math.Abs(g-w) > tol {
			t.Fatalf("%s: vertex %d: got %v want %v (tol %v)", what, v, g, w, tol)
		}
	}
}

// TestAlgorithmsMatchReference streams batches and, after every batch,
// checks both compute models of every algorithm on every data structure
// against sequential reference implementations.
func TestAlgorithmsMatchReference(t *testing.T) {
	batches := randBatches(11, 5, 600, 150)
	opts := compute.Options{Source: 0, Threads: 4, PRTolerance: 1e-12, PRMaxIters: 200, Epsilon: 1e-12}

	for _, dsName := range ds.Names() {
		g := ds.MustNew(dsName, ds.Config{Directed: true, Threads: 4})
		oracle := graph.NewOracle(true)

		engines := map[string]compute.Engine{}
		for _, alg := range compute.AlgNames() {
			engines[alg+"/fs"] = compute.MustNewEngine(alg, compute.FS, opts)
			engines[alg+"/inc"] = compute.MustNewEngine(alg, compute.INC, opts)
		}

		for bi, b := range batches {
			g.Update(b)
			oracle.Update(b)
			aff := affectedOf(b)
			ref := buildRef(oracle)

			want := map[string][]float64{
				"bfs":  refBFS(ref, 0),
				"cc":   refCC(ref),
				"mc":   refMC(ref),
				"sssp": refSSSP(ref, 0),
				"sswp": refSSWP(ref, 0),
			}
			for _, alg := range []string{"bfs", "cc", "mc", "sssp", "sswp"} {
				for _, model := range []string{"fs", "inc"} {
					e := engines[alg+"/"+model]
					e.PerformAlg(g, aff)
					valsEqual(t, dsName+" batch "+itoa(bi)+" "+alg+"/"+model, e.Values(), want[alg], 1e-9)
				}
			}
			// PageRank: both models approximate the same fixpoint;
			// with tight tolerances they must agree closely.
			fs := engines["pr/fs"]
			inc := engines["pr/inc"]
			fs.PerformAlg(g, aff)
			inc.PerformAlg(g, aff)
			valsEqual(t, dsName+" batch "+itoa(bi)+" pr fs-vs-inc", inc.Values(), fs.Values(), 1e-6)
			sum := 0.0
			for _, r := range fs.Values() {
				sum += r
			}
			if sum <= 0 || math.IsNaN(sum) {
				t.Fatalf("%s: implausible PR mass %v", dsName, sum)
			}
		}
	}
}

func itoa(i int) string {
	if i == 0 {
		return "0"
	}
	var b []byte
	for i > 0 {
		b = append([]byte{byte('0' + i%10)}, b...)
		i /= 10
	}
	return string(b)
}

// TestIncDoesLessWorkThanFS checks the incremental model's raison d'être:
// after the first batch, INC recomputes far fewer vertices than FS on a
// growing graph.
func TestIncDoesLessWorkThanFS(t *testing.T) {
	batches := randBatches(13, 10, 400, 4000)
	g := ds.MustNew("adjshared", ds.Config{Directed: true, Threads: 2})
	opts := compute.Options{Threads: 2}
	fs := compute.MustNewEngine("cc", compute.FS, opts)
	inc := compute.MustNewEngine("cc", compute.INC, opts)
	var fsWork, incWork uint64
	for _, b := range batches {
		g.Update(b)
		aff := affectedOf(b)
		fs.PerformAlg(g, aff)
		inc.PerformAlg(g, aff)
		fsWork += fs.Stats().Processed
		incWork += inc.Stats().Processed
	}
	if incWork >= fsWork {
		t.Fatalf("INC processed %d vertices, FS %d; INC should be cheaper", incWork, fsWork)
	}
}

func TestEngineErrors(t *testing.T) {
	if _, err := compute.NewEngine("nope", compute.FS, compute.Options{}); err == nil {
		t.Error("expected error for unknown algorithm")
	}
	if _, err := compute.NewEngine("bfs", "weird", compute.Options{}); err == nil {
		t.Error("expected error for unknown model")
	}
}

func TestEmptyGraphCompute(t *testing.T) {
	g := ds.MustNew("adjshared", ds.Config{Directed: true})
	for _, alg := range compute.AlgNames() {
		for _, model := range []compute.Model{compute.FS, compute.INC} {
			e := compute.MustNewEngine(alg, model, compute.Options{})
			e.PerformAlg(g, nil) // must not panic on an empty graph
			if len(e.Values()) != 0 {
				t.Errorf("%s/%s: values on empty graph", alg, model)
			}
		}
	}
}

func TestSourceOutsideGraph(t *testing.T) {
	g := ds.MustNew("adjshared", ds.Config{Directed: true})
	g.Update(graph.Batch{{Src: 0, Dst: 1, Weight: 1}})
	opts := compute.Options{Source: 50}
	for _, model := range []compute.Model{compute.FS, compute.INC} {
		e := compute.MustNewEngine("bfs", model, opts)
		e.PerformAlg(g, []graph.NodeID{0, 1})
		for v, d := range e.Values() {
			if !math.IsInf(d, 1) {
				t.Errorf("%s: vertex %d reachable from absent source: %v", model, v, d)
			}
		}
	}
	_ = testInf
}
