package compute_test

import (
	"math"
	"math/rand"
	"testing"

	"sagabench/internal/compute"
	"sagabench/internal/ds"
	_ "sagabench/internal/ds/all"
	"sagabench/internal/graph"
)

func affectedOf(b graph.Batch) []graph.NodeID {
	seen := map[graph.NodeID]bool{}
	var out []graph.NodeID
	for _, e := range b {
		if !seen[e.Src] {
			seen[e.Src] = true
			out = append(out, e.Src)
		}
		if !seen[e.Dst] {
			seen[e.Dst] = true
			out = append(out, e.Dst)
		}
	}
	return out
}

func randBatches(seed int64, numBatches, batchSize, numNodes int) []graph.Batch {
	rng := rand.New(rand.NewSource(seed))
	batches := make([]graph.Batch, numBatches)
	for b := range batches {
		batch := make(graph.Batch, batchSize)
		for i := range batch {
			src := graph.NodeID(rng.Intn(numNodes))
			dst := graph.NodeID(rng.Intn(numNodes))
			// Weight is a pure function of the endpoints so duplicate
			// edges ingested in nondeterministic parallel order agree
			// with the sequentially built oracle.
			w := graph.Weight((uint32(src)*7+uint32(dst)*13)%20) + 1
			batch[i] = graph.Edge{Src: src, Dst: dst, Weight: w}
		}
		batches[b] = batch
	}
	return batches
}

func valsEqual(t *testing.T, what string, got, want []float64, tol float64) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d values, want %d", what, len(got), len(want))
	}
	for v := range got {
		g, w := got[v], want[v]
		if math.IsInf(g, 1) && math.IsInf(w, 1) {
			continue
		}
		if math.Abs(g-w) > tol {
			t.Fatalf("%s: vertex %d: got %v want %v (tol %v)", what, v, g, w, tol)
		}
	}
}

// TestAlgorithmsMatchReference streams batches and, after every batch,
// checks both compute models of every algorithm on every data structure
// against sequential reference implementations.
func TestAlgorithmsMatchReference(t *testing.T) {
	batches := randBatches(11, 5, 600, 150)
	opts := compute.Options{Source: 0, Threads: 4, PRTolerance: 1e-12, PRMaxIters: 200, Epsilon: 1e-12}

	for _, dsName := range ds.Names() {
		g := ds.MustNew(dsName, ds.Config{Directed: true, Threads: 4})
		oracle := graph.NewOracle(true)

		engines := map[string]compute.Engine{}
		for _, alg := range compute.AlgNames() {
			engines[alg+"/fs"] = compute.MustNewEngine(alg, compute.FS, opts)
			engines[alg+"/inc"] = compute.MustNewEngine(alg, compute.INC, opts)
		}

		for bi, b := range batches {
			g.Update(b)
			oracle.Update(b)
			aff := affectedOf(b)
			want := map[string][]float64{
				"bfs":  graph.RefBFS(oracle, 0),
				"cc":   graph.RefCC(oracle),
				"mc":   graph.RefMC(oracle),
				"sssp": graph.RefSSSP(oracle, 0),
				"sswp": graph.RefSSWP(oracle, 0),
			}
			for _, alg := range []string{"bfs", "cc", "mc", "sssp", "sswp"} {
				for _, model := range []string{"fs", "inc"} {
					e := engines[alg+"/"+model]
					e.PerformAlg(g, aff)
					valsEqual(t, dsName+" batch "+itoa(bi)+" "+alg+"/"+model, e.Values(), want[alg], 1e-9)
				}
			}
			// PageRank: both models approximate the same fixpoint;
			// with tight tolerances they must agree closely.
			fs := engines["pr/fs"]
			inc := engines["pr/inc"]
			fs.PerformAlg(g, aff)
			inc.PerformAlg(g, aff)
			valsEqual(t, dsName+" batch "+itoa(bi)+" pr fs-vs-inc", inc.Values(), fs.Values(), 1e-6)
			sum := 0.0
			for _, r := range fs.Values() {
				sum += r
			}
			if sum <= 0 || math.IsNaN(sum) {
				t.Fatalf("%s: implausible PR mass %v", dsName, sum)
			}
		}
	}
}

func itoa(i int) string {
	if i == 0 {
		return "0"
	}
	var b []byte
	for i > 0 {
		b = append([]byte{byte('0' + i%10)}, b...)
		i /= 10
	}
	return string(b)
}

// TestIncDoesLessWorkThanFS checks the incremental model's raison d'être:
// after the first batch, INC recomputes far fewer vertices than FS on a
// growing graph.
func TestIncDoesLessWorkThanFS(t *testing.T) {
	batches := randBatches(13, 10, 400, 4000)
	g := ds.MustNew("adjshared", ds.Config{Directed: true, Threads: 2})
	opts := compute.Options{Threads: 2}
	fs := compute.MustNewEngine("cc", compute.FS, opts)
	inc := compute.MustNewEngine("cc", compute.INC, opts)
	var fsWork, incWork uint64
	for _, b := range batches {
		g.Update(b)
		aff := affectedOf(b)
		fs.PerformAlg(g, aff)
		inc.PerformAlg(g, aff)
		fsWork += fs.Stats().Processed
		incWork += inc.Stats().Processed
	}
	if incWork >= fsWork {
		t.Fatalf("INC processed %d vertices, FS %d; INC should be cheaper", incWork, fsWork)
	}
}

func TestEngineErrors(t *testing.T) {
	if _, err := compute.NewEngine("nope", compute.FS, compute.Options{}); err == nil {
		t.Error("expected error for unknown algorithm")
	}
	if _, err := compute.NewEngine("bfs", "weird", compute.Options{}); err == nil {
		t.Error("expected error for unknown model")
	}
}

func TestEmptyGraphCompute(t *testing.T) {
	g := ds.MustNew("adjshared", ds.Config{Directed: true})
	for _, alg := range compute.AlgNames() {
		for _, model := range []compute.Model{compute.FS, compute.INC} {
			e := compute.MustNewEngine(alg, model, compute.Options{})
			e.PerformAlg(g, nil) // must not panic on an empty graph
			if len(e.Values()) != 0 {
				t.Errorf("%s/%s: values on empty graph", alg, model)
			}
		}
	}
}

func TestSourceOutsideGraph(t *testing.T) {
	g := ds.MustNew("adjshared", ds.Config{Directed: true})
	g.Update(graph.Batch{{Src: 0, Dst: 1, Weight: 1}})
	opts := compute.Options{Source: 50}
	for _, model := range []compute.Model{compute.FS, compute.INC} {
		e := compute.MustNewEngine("bfs", model, opts)
		e.PerformAlg(g, []graph.NodeID{0, 1})
		for v, d := range e.Values() {
			if !math.IsInf(d, 1) {
				t.Errorf("%s: vertex %d reachable from absent source: %v", model, v, d)
			}
		}
	}
}
