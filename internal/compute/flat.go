package compute

import (
	"sync"
	"time"

	"sagabench/internal/ds"
	"sagabench/internal/graph"
)

// This file is the kernel side of the compute-view layer: resolution of a
// graph's flat CSR mirror, an edge-balanced range partitioner so one hub
// vertex no longer serializes a round, and reusable per-worker frontier
// buffers that replace the mutex-guarded shared append in the traversal
// kernels.

// flatCSROf resolves the zero-copy fast path: a graph exposing a flat CSR
// (ds.ComputeView or snapshot.Frozen) returns its index/adjacency arrays
// for direct iteration; every other graph returns nil and the kernels
// stay on the OutNeigh/InNeigh interface path.
func flatCSROf(g ds.Graph) *graph.CSR {
	if fv, ok := g.(ds.FlatView); ok {
		return fv.FlatCSR()
	}
	return nil
}

// outRunOf returns v's out-adjacency as a zero-copy CSR run when csr is
// available, else fills buf through the interface. The returned buffer is
// the (possibly grown) scratch to carry to the next call.
//
// saga:hotpath
func outRunOf(g ds.Graph, csr *graph.CSR, v graph.NodeID, buf []graph.Neighbor) (run, scratch []graph.Neighbor) {
	if csr != nil {
		return csr.Out(v), buf
	}
	buf = g.OutNeigh(v, buf[:0])
	return buf, buf
}

// pushRuns returns v's push-direction adjacency as up to two runs: the
// out-run and, when both directions propagate (CC), the in-run. On the
// flat path these are zero-copy CSR runs; on the interface path both
// directions land in buf and b is nil.
//
// saga:hotpath
func pushRuns(g ds.Graph, csr *graph.CSR, v graph.NodeID, both bool, buf []graph.Neighbor) (a, b, scratch []graph.Neighbor) {
	if csr != nil {
		a = csr.Out(v)
		if both {
			b = csr.In(v)
		}
		return a, b, buf
	}
	buf = g.OutNeigh(v, buf[:0])
	if both {
		buf = g.InNeigh(v, buf)
	}
	return buf, nil, buf
}

// balancedCuts splits [0,n) items into at most `threads` contiguous
// ranges of roughly equal summed weight, where item i weighs
// weight(i)+1 (the +1 keeps zero-degree items from collapsing into one
// range). cuts is reused as the destination; the result satisfies
// cuts[0] = 0, cuts[len-1] = n with len-1 <= threads ranges. This is the
// degree-prefix-sum partitioner: frontier rounds weight items by degree
// so a hub's edge volume is one worker's share, not appended to a
// uniform slice.
func balancedCuts(cuts []int, n, threads int, weight func(i int) int64) []int {
	cuts = append(cuts[:0], 0)
	if threads <= 1 || n <= 1 {
		if n < 0 {
			n = 0
		}
		return append(cuts, n)
	}
	var total int64
	for i := 0; i < n; i++ {
		total += weight(i) + 1
	}
	var acc int64
	for i := 0; i < n-1 && len(cuts) < threads; i++ {
		acc += weight(i) + 1
		// Cut k closes when the running sum reaches k/threads of the
		// total (integer cross-multiplied).
		if acc*int64(threads) >= total*int64(len(cuts)) {
			cuts = append(cuts, i+1)
		}
	}
	return append(cuts, n)
}

// uniformCuts is the equal-count partition of [0,n) into at most
// `threads` ranges — the same split parallelFor uses, expressed as cuts
// so callers can switch partitioners without duplicating the worker
// loop.
func uniformCuts(cuts []int, n, threads int) []int {
	cuts = append(cuts[:0], 0)
	if threads <= 1 || n <= 1 {
		if n < 0 {
			n = 0
		}
		return append(cuts, n)
	}
	if threads > n {
		threads = n
	}
	per := (n + threads - 1) / threads
	for lo := per; lo < n; lo += per {
		cuts = append(cuts, lo)
	}
	return append(cuts, n)
}

// parallelRanges runs fn(w, cuts[w], cuts[w+1]) for every range
// concurrently, with the same panic capture and re-raise as parallelFor
// (the poison-batch quarantine relies on worker panics surfacing on the
// caller). Worker indices are dense, so fn can index per-worker state.
func parallelRanges(cuts []int, fn func(w, lo, hi int)) {
	k := len(cuts) - 1
	if k <= 0 {
		return
	}
	if k == 1 {
		fn(0, cuts[0], cuts[1])
		return
	}
	var wg sync.WaitGroup
	var panicOnce sync.Once
	var panicVal any
	for w := 0; w < k; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					panicOnce.Do(func() { panicVal = r })
				}
			}()
			fn(w, cuts[w], cuts[w+1])
		}(w)
	}
	wg.Wait()
	if panicVal != nil {
		panic(panicVal)
	}
}

// workerClock accumulates per-worker busy time across a phase's parallel
// rounds, feeding Stats.WorkerBusyNS and the straggler ratio. Plain (non
// atomic) stores are safe: each slot is written only by its own worker
// inside parallelRanges, and rounds join through the WaitGroup before the
// coordinator reads, so every access is ordered by happens-before edges
// the kernels already have.
type workerClock struct {
	busy []int64
}

// reset prepares `workers` zeroed slots, retaining capacity.
func (c *workerClock) reset(workers int) {
	for len(c.busy) < workers {
		c.busy = append(c.busy, 0)
	}
	c.busy = c.busy[:workers]
	for i := range c.busy {
		c.busy[i] = 0
	}
}

// add charges d to worker w. No-op before reset or for out-of-range w
// (sequential kernels never call it).
//
// saga:hotpath
func (c *workerClock) add(w int, d time.Duration) {
	if w >= 0 && w < len(c.busy) {
		c.busy[w] += int64(d)
	}
}

// pushBufs is reusable per-worker frontier storage: during a round each
// worker appends discovered vertices to its own buffer, and concat merges
// them with one sizing pass and one copy pass per buffer. This replaces
// the mutex-guarded shared append the kernels used, whose lock a
// hub-heavy worker could hold while every other worker waited.
type pushBufs struct {
	bufs [][]graph.NodeID
}

// reset prepares `workers` empty buffers, retaining their capacity.
func (p *pushBufs) reset(workers int) {
	for len(p.bufs) < workers {
		p.bufs = append(p.bufs, nil)
	}
	for i := 0; i < workers; i++ {
		p.bufs[i] = p.bufs[i][:0]
	}
}

// concat merges the first `workers` buffers into dst (reused when it has
// capacity) in worker order, which makes the merged frontier order
// deterministic for a fixed partition.
//
// saga:hotpath
func (p *pushBufs) concat(dst []graph.NodeID, workers int) []graph.NodeID {
	total := 0
	for i := 0; i < workers; i++ {
		total += len(p.bufs[i])
	}
	if cap(dst) < total {
		dst = make([]graph.NodeID, total) // saga:allow hotalloc -- grow-on-demand fallback; steady-state rounds reuse dst (AllocsPerRun asserts 0)
	}
	dst = dst[:total]
	off := 0
	for i := 0; i < workers; i++ {
		off += copy(dst[off:], p.bufs[i])
	}
	return dst
}
