package compute

import "sagabench/internal/graph"

// State is the cross-batch memory of an engine, exported for checkpointing
// and restored on crash recovery. For the INC model this is the whole
// processing-amortization contract: vertex values persist across batches,
// so a recovered engine must resume from the checkpointed values (plus the
// vertex count they were computed at and any deletion-invalidated cone
// still awaiting recomputation), not from scratch. The FS model recomputes
// everything per batch; its state is the last property array only, kept so
// a recovered pipeline reports the same values before the next batch runs.
type State struct {
	// Values is the vertex property array at checkpoint time.
	Values []float64
	// LastN is the vertex count of the previous compute phase (INC only;
	// globalN algorithms use it to detect |V| growth).
	LastN int
	// Pending is the deletion-invalidated cone awaiting the next compute
	// phase (INC only).
	Pending []graph.NodeID
}

// Stateful is implemented by engines whose cross-batch state can be
// exported and restored. Both built-in models implement it.
type Stateful interface {
	// ExportState snapshots the engine's cross-batch state.
	ExportState() State
	// RestoreState replaces the engine's state with a snapshot previously
	// taken by ExportState on an engine of the same spec.
	RestoreState(State)
}

// ExportState implements Stateful.
func (e *incEngine) ExportState() State {
	s := State{
		Values: append([]float64(nil), e.vals.materialize(nil)...),
		LastN:  e.lastN,
	}
	if len(e.pendingInvalid) > 0 {
		s.Pending = append([]graph.NodeID(nil), e.pendingInvalid...)
	}
	return s
}

// RestoreState implements Stateful.
func (e *incEngine) RestoreState(s State) {
	e.vals = e.vals[:0]
	for i, f := range s.Values {
		e.vals = append(e.vals, 0)
		e.vals.set(i, f)
	}
	e.lastN = s.LastN
	e.pendingInvalid = append(e.pendingInvalid[:0], s.Pending...)
	e.visited = e.visited[:0]
	e.stats = Stats{}
}

// ExportState implements Stateful.
func (e *fsEngine) ExportState() State {
	return State{Values: append([]float64(nil), e.vals.materialize(nil)...)}
}

// RestoreState implements Stateful. FS recomputes from scratch every
// batch, so only the reported property array needs to carry over.
func (e *fsEngine) RestoreState(s State) {
	e.vals = e.vals[:0]
	for i, f := range s.Values {
		e.vals = append(e.vals, 0)
		e.vals.set(i, f)
	}
	e.stats = Stats{}
}
