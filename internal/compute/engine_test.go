package compute_test

import (
	"math"
	"testing"

	"sagabench/internal/compute"
	"sagabench/internal/ds"
	_ "sagabench/internal/ds/all"
	"sagabench/internal/graph"
)

func line(t *testing.T, n int) ds.Graph {
	t.Helper()
	g := ds.MustNew("adjshared", ds.Config{Directed: true, Threads: 1})
	var b graph.Batch
	for i := 0; i < n-1; i++ {
		b = append(b, graph.Edge{Src: graph.NodeID(i), Dst: graph.NodeID(i + 1), Weight: graph.Weight(i + 1)})
	}
	g.Update(b)
	return g
}

func affected(n int) []graph.NodeID {
	out := make([]graph.NodeID, n)
	for i := range out {
		out[i] = graph.NodeID(i)
	}
	return out
}

func TestBFSLineGraph(t *testing.T) {
	g := line(t, 6)
	for _, model := range []compute.Model{compute.FS, compute.INC} {
		e := compute.MustNewEngine("bfs", model, compute.Options{})
		e.PerformAlg(g, affected(6))
		for v, d := range e.Values() {
			if d != float64(v) {
				t.Fatalf("%s: depth[%d]=%v want %d", model, v, d, v)
			}
		}
		if s := e.Stats(); s.Processed == 0 || s.EdgesTraversed == 0 || s.Iterations == 0 {
			t.Fatalf("%s: empty stats %+v", model, s)
		}
	}
}

func TestSSSPLineGraphWeights(t *testing.T) {
	g := line(t, 5) // weights 1,2,3,4 => dist = prefix sums
	want := []float64{0, 1, 3, 6, 10}
	for _, model := range []compute.Model{compute.FS, compute.INC} {
		e := compute.MustNewEngine("sssp", model, compute.Options{})
		e.PerformAlg(g, affected(5))
		for v, d := range e.Values() {
			if d != want[v] {
				t.Fatalf("%s: dist[%d]=%v want %v", model, v, d, want[v])
			}
		}
	}
}

func TestSSWPBottleneck(t *testing.T) {
	// 0 -10-> 1 -3-> 2 -8-> 3 : widest path to 3 bottlenecks at 3.
	g := ds.MustNew("adjshared", ds.Config{Directed: true})
	g.Update(graph.Batch{
		{Src: 0, Dst: 1, Weight: 10},
		{Src: 1, Dst: 2, Weight: 3},
		{Src: 2, Dst: 3, Weight: 8},
	})
	for _, model := range []compute.Model{compute.FS, compute.INC} {
		e := compute.MustNewEngine("sswp", model, compute.Options{})
		e.PerformAlg(g, affected(4))
		vals := e.Values()
		want := []float64{math.Inf(1), 10, 3, 3}
		for v := range want {
			if vals[v] != want[v] {
				t.Fatalf("%s: width[%d]=%v want %v", model, v, vals[v], want[v])
			}
		}
	}
}

func TestMCPropagatesMaxID(t *testing.T) {
	// 9 -> 0 -> 1: max value 9 flows downstream.
	g := ds.MustNew("adjshared", ds.Config{Directed: true})
	g.Update(graph.Batch{
		{Src: 9, Dst: 0, Weight: 1},
		{Src: 0, Dst: 1, Weight: 1},
	})
	for _, model := range []compute.Model{compute.FS, compute.INC} {
		e := compute.MustNewEngine("mc", model, compute.Options{})
		e.PerformAlg(g, affected(10))
		vals := e.Values()
		if vals[0] != 9 || vals[1] != 9 || vals[9] != 9 {
			t.Fatalf("%s: mc values %v", model, vals)
		}
		// Vertices without in-edges from 9 keep their own IDs.
		if vals[5] != 5 {
			t.Fatalf("%s: untouched vertex mutated: %v", model, vals[5])
		}
	}
}

func TestCCSelfLoopAndIsolated(t *testing.T) {
	g := ds.MustNew("adjshared", ds.Config{Directed: true})
	g.Update(graph.Batch{
		{Src: 2, Dst: 2, Weight: 1}, // self loop
		{Src: 4, Dst: 5, Weight: 1},
	})
	for _, model := range []compute.Model{compute.FS, compute.INC} {
		e := compute.MustNewEngine("cc", model, compute.Options{})
		e.PerformAlg(g, affected(6))
		vals := e.Values()
		if vals[2] != 2 {
			t.Fatalf("%s: self loop changed label: %v", model, vals[2])
		}
		if vals[4] != 4 || vals[5] != 4 {
			t.Fatalf("%s: component {4,5} labels %v %v", model, vals[4], vals[5])
		}
		if vals[0] != 0 || vals[1] != 1 || vals[3] != 3 {
			t.Fatalf("%s: isolated labels wrong: %v", model, vals[:4])
		}
	}
}

// TestIncGrowsAcrossBatches: an INC engine must handle the vertex space
// growing between PerformAlg calls (new vertices initialized fresh).
func TestIncGrowsAcrossBatches(t *testing.T) {
	g := ds.MustNew("adjshared", ds.Config{Directed: true})
	e := compute.MustNewEngine("bfs", compute.INC, compute.Options{})
	g.Update(graph.Batch{{Src: 0, Dst: 1, Weight: 1}})
	e.PerformAlg(g, []graph.NodeID{0, 1})
	g.Update(graph.Batch{{Src: 1, Dst: 500, Weight: 1}})
	e.PerformAlg(g, []graph.NodeID{1, 500})
	vals := e.Values()
	if len(vals) != 501 {
		t.Fatalf("values length %d want 501", len(vals))
	}
	if vals[500] != 2 {
		t.Fatalf("depth[500]=%v want 2", vals[500])
	}
	// A vertex that never appeared in any edge stays unreachable.
	if !math.IsInf(vals[250], 1) {
		t.Fatalf("depth[250]=%v want +Inf", vals[250])
	}
}

// TestIncShortcutImprovement: adding a shortcut must lower downstream
// depths through selective triggering alone (affected = new endpoints
// only, the propagation does the rest).
func TestIncShortcutImprovement(t *testing.T) {
	g := ds.MustNew("adjshared", ds.Config{Directed: true})
	e := compute.MustNewEngine("bfs", compute.INC, compute.Options{})
	var chain graph.Batch
	for i := 0; i < 9; i++ {
		chain = append(chain, graph.Edge{Src: graph.NodeID(i), Dst: graph.NodeID(i + 1), Weight: 1})
	}
	g.Update(chain)
	e.PerformAlg(g, affected(10))
	if e.Values()[9] != 9 {
		t.Fatalf("chain depth = %v want 9", e.Values()[9])
	}
	// Shortcut 0 -> 7: depths 7,8,9 collapse to 1,2,3.
	g.Update(graph.Batch{{Src: 0, Dst: 7, Weight: 1}})
	e.PerformAlg(g, []graph.NodeID{0, 7})
	vals := e.Values()
	if vals[7] != 1 || vals[8] != 2 || vals[9] != 3 {
		t.Fatalf("after shortcut: %v", vals[7:])
	}
	if s := e.Stats(); s.Processed > 6 {
		t.Fatalf("selective triggering processed %d vertices; expected a handful", s.Processed)
	}
}

func TestPRMassConservation(t *testing.T) {
	g := ds.MustNew("adjshared", ds.Config{Directed: true, Threads: 2})
	var b graph.Batch
	for i := 0; i < 200; i++ {
		b = append(b, graph.Edge{
			Src: graph.NodeID(i % 40), Dst: graph.NodeID((i*7 + 3) % 40), Weight: 1,
		})
	}
	g.Update(b)
	e := compute.MustNewEngine("pr", compute.FS, compute.Options{Threads: 2})
	e.PerformAlg(g, nil)
	sum := 0.0
	for _, r := range e.Values() {
		if r < 0 {
			t.Fatalf("negative rank %v", r)
		}
		sum += r
	}
	// With dangling mass uncollected the sum is <= 1 but must stay
	// within the plausible band (no blow-up, no collapse).
	if sum <= 0.1 || sum > 1.5 {
		t.Fatalf("implausible PR mass %v", sum)
	}
}

func TestEngineIdentity(t *testing.T) {
	e := compute.MustNewEngine("sssp", compute.FS, compute.Options{})
	if e.Name() != "sssp" || e.Model() != compute.FS {
		t.Fatalf("identity: %s/%s", e.Name(), e.Model())
	}
	if !e.HandlesDeletions() {
		t.Fatal("FS engines must handle deletions")
	}
	// Every INC engine accepts deletions: PageRank natively, the
	// monotone algorithms through KickStarter-style trimming.
	for _, alg := range compute.AlgNames() {
		inc := compute.MustNewEngine(alg, compute.INC, compute.Options{})
		if !inc.HandlesDeletions() {
			t.Fatalf("%s/inc should handle deletions", alg)
		}
	}
}

// TestIncIdentityAndDirectTrim exercises the INC engine identity and a
// direct NotifyDeletions call (the KickStarter trimming entry point; full
// end-to-end coverage lives in internal/core).
func TestIncIdentityAndDirectTrim(t *testing.T) {
	g := ds.MustNew("adjshared", ds.Config{Directed: true})
	e := compute.MustNewEngine("sssp", compute.INC, compute.Options{})
	if e.Name() != "sssp" || e.Model() != compute.INC {
		t.Fatalf("identity %s/%s", e.Name(), e.Model())
	}
	g.Update(graph.Batch{
		{Src: 0, Dst: 1, Weight: 4},
		{Src: 1, Dst: 2, Weight: 3},
	})
	e.PerformAlg(g, affected(3))
	if e.Values()[2] != 7 {
		t.Fatalf("dist[2]=%v want 7", e.Values()[2])
	}
	// Remove the supporting edge and notify: the cone {1,2} must reset
	// and the next compute leaves them unreachable.
	if err := g.(ds.Deleter).Delete(graph.Batch{{Src: 0, Dst: 1, Weight: 4}}); err != nil {
		t.Fatal(err)
	}
	e.(compute.DeletionAware).NotifyDeletions(g, graph.Batch{{Src: 0, Dst: 1, Weight: 4}})
	e.PerformAlg(g, nil)
	vals := e.Values()
	if !math.IsInf(vals[1], 1) || !math.IsInf(vals[2], 1) {
		t.Fatalf("cone not reset: %v", vals)
	}
	if vals[0] != 0 {
		t.Fatalf("source moved: %v", vals[0])
	}
	// PR's engine ignores the notification (no trimming needed).
	pr := compute.MustNewEngine("pr", compute.INC, compute.Options{})
	pr.PerformAlg(g, affected(3))
	pr.(compute.DeletionAware).NotifyDeletions(g, graph.Batch{{Src: 0, Dst: 1, Weight: 4}})
}

// TestBFSBottomUpPath forces the direction-optimizing switch: a dense
// two-level graph whose first frontier covers most vertices triggers the
// bottom-up sweep, which must produce the same depths as the reference.
func TestBFSBottomUpPath(t *testing.T) {
	g := ds.MustNew("adjshared", ds.Config{Directed: true, Threads: 2})
	var b graph.Batch
	const hubFan = 200
	for i := 1; i <= hubFan; i++ {
		b = append(b, graph.Edge{Src: 0, Dst: graph.NodeID(i), Weight: 1})
	}
	// Level-2 vertices each reachable from many level-1 vertices (dense
	// in-neighborhoods reward the bottom-up pull).
	for i := 1; i <= hubFan; i++ {
		for j := 0; j < 4; j++ {
			dst := graph.NodeID(hubFan + 1 + (i*7+j*13)%50)
			b = append(b, graph.Edge{Src: graph.NodeID(i), Dst: dst, Weight: 1})
		}
	}
	g.Update(b)
	e := compute.MustNewEngine("bfs", compute.FS, compute.Options{Threads: 2})
	e.PerformAlg(g, nil)
	vals := e.Values()
	if vals[0] != 0 {
		t.Fatal("source depth")
	}
	for i := 1; i <= hubFan; i++ {
		if vals[i] != 1 {
			t.Fatalf("level-1 vertex %d depth %v", i, vals[i])
		}
	}
	for i := hubFan + 1; i < len(vals); i++ {
		if g.InDegree(graph.NodeID(i)) > 0 && vals[i] != 2 {
			t.Fatalf("level-2 vertex %d depth %v", i, vals[i])
		}
	}
}

func TestMustNewEnginePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustNewEngine should panic on unknown algorithm")
		}
	}()
	compute.MustNewEngine("nope", compute.FS, compute.Options{})
}

func TestExplicitDelta(t *testing.T) {
	g := line(t, 4)
	e := compute.MustNewEngine("sssp", compute.FS, compute.Options{Delta: 1})
	e.PerformAlg(g, nil)
	if e.Values()[3] != 6 {
		t.Fatalf("delta=1 dist %v want 6", e.Values()[3])
	}
}
