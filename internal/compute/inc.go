package compute

import (
	"sync"
	"sync/atomic"

	"sagabench/internal/ds"
	"sagabench/internal/graph"
)

// incEngine implements the paper's Algorithm 1: incremental computation via
// processing amortization (vertex values persist across batches; only new
// vertices are initialized) and selective triggering (recomputation starts
// from the batch-affected vertices and propagates only changes larger than
// the triggering threshold, frontier round by frontier round, until no
// vertex triggers).
type incEngine struct {
	spec spec
	opts Options

	vals     values
	visited  []uint32
	stats    Stats
	valsCopy []float64

	// pendingInvalid holds the deletion-invalidated cone awaiting the
	// next compute phase (see trim.go).
	pendingInvalid []graph.NodeID

	// lastN is the vertex count of the previous compute phase, used by
	// globalN algorithms to detect |V| growth (see PerformAlg).
	lastN int
}

func newIncEngine(s spec, opts Options) *incEngine {
	return &incEngine{spec: s, opts: opts}
}

func (e *incEngine) Name() string { return e.spec.name }
func (e *incEngine) Model() Model { return INC }

// Values materializes the property array.
func (e *incEngine) Values() []float64 {
	e.valsCopy = e.vals.materialize(e.valsCopy)
	return e.valsCopy
}

func (e *incEngine) Stats() Stats { return e.stats }

// HandlesDeletions implements Engine: PageRank re-converges natively, and
// the monotone algorithms repair through KickStarter-style trimming
// (NotifyDeletions in trim.go).
func (e *incEngine) HandlesDeletions() bool { return e.spec.deletionSafe || e.spec.tight != nil }

// PerformAlg implements Engine.
func (e *incEngine) PerformAlg(g ds.Graph, affected []graph.NodeID) {
	n := g.NumNodes()
	e.stats = Stats{}
	// Lines 2-4: initialize new vertices only (processing amortization —
	// old vertices keep the previous batch's values).
	//
	// PageRank's fresh value depends on |V|: paper line 4 assigns 1/|V|
	// at the current vertex count.
	for v := len(e.vals); v < n; v++ {
		e.vals = append(e.vals, 0)
		e.vals.set(v, e.spec.initValue(graph.NodeID(v), n))
	}
	if e.spec.hasSource && int(e.opts.Source) < n {
		e.vals.set(int(e.opts.Source), e.spec.sourceValue)
	}
	for len(e.visited) < n {
		e.visited = append(e.visited, 0)
	}

	// For globalN algorithms (PageRank) |V| is an input to every vertex's
	// function — the base term 0.15/|V| — so a vertex-count change
	// affects all vertices, not just the batch's endpoints. Widening the
	// affected set here keeps never-touched vertices (ID gaps with no
	// edges) and settled vertices correct as the graph grows; selective
	// triggering still cuts the propagation off quickly because values
	// start near the fixpoint.
	if e.spec.globalN && n != e.lastN {
		all := make([]graph.NodeID, n)
		for v := range all {
			all[v] = graph.NodeID(v)
		}
		affected = all
	} else if e.spec.degreeSensitive && len(affected) > 0 {
		// An inserted or deleted edge (u,v) changes u's out-degree, an
		// input to the rank of every OTHER out-neighbor of u — vertices
		// that are not batch endpoints. Pull the out-neighborhood of the
		// affected set into the first round; a recompute whose value does
		// not move triggers nothing, so the over-approximation is cheap.
		seen := make(map[graph.NodeID]bool, len(affected)*2)
		expanded := make([]graph.NodeID, 0, len(affected)*2)
		for _, v := range affected {
			if !seen[v] {
				seen[v] = true
				expanded = append(expanded, v)
			}
		}
		var nbuf []graph.Neighbor
		for _, v := range affected {
			nbuf = g.OutNeigh(v, nbuf[:0])
			for _, nb := range nbuf {
				if !seen[nb.ID] {
					seen[nb.ID] = true
					expanded = append(expanded, nb.ID)
				}
			}
		}
		affected = expanded
	}
	e.lastN = n

	eps := e.spec.epsilon(e.opts, n)
	threads := e.opts.threads()

	var processed, edges, triggered atomic.Uint64

	// processRound re-executes lines 9-15 for every vertex in curr,
	// returning the next frontier. Values are written in place; the
	// visited bitvector (CAS-guarded, line 14) deduplicates pushes.
	processRound := func(curr []graph.NodeID) []graph.NodeID {
		var mu sync.Mutex
		var next []graph.NodeID
		parallelFor(len(curr), threads, func(lo, hi int) {
			ctx := &recomputeCtx{g: g, vals: e.vals, numNodes: n, opts: e.opts}
			var local []graph.NodeID
			var pushBuf []graph.Neighbor
			var nProc, nTrig uint64
			for _, v := range curr[lo:hi] {
				if int(v) >= n {
					// Callers may pass endpoints the graph never
					// materialized (e.g. no-op deletes of unseen
					// vertices); there is no state to recompute.
					continue
				}
				nProc++
				old := e.vals.get(int(v))
				newv := e.spec.recompute(ctx, v)
				if e.spec.hasSource && v == e.opts.Source {
					newv = e.spec.sourceValue
				}
				e.vals.set(int(v), newv)
				trigger := false
				if eps > 0 {
					d := newv - old
					if d < 0 {
						d = -d
					}
					trigger = d > eps
				} else {
					trigger = newv != old
				}
				if !trigger {
					continue
				}
				nTrig++
				pushBuf = g.OutNeigh(v, pushBuf[:0])
				if e.spec.pushBoth {
					pushBuf = g.InNeigh(v, pushBuf)
				}
				ctx.edges += uint64(len(pushBuf))
				for _, nb := range pushBuf {
					if atomic.CompareAndSwapUint32(&e.visited[nb.ID], 0, 1) {
						local = append(local, nb.ID)
					}
				}
			}
			processed.Add(nProc)
			triggered.Add(nTrig)
			edges.Add(ctx.edges)
			if len(local) > 0 {
				mu.Lock()
				next = append(next, local...)
				mu.Unlock()
			}
		})
		// Line 20: visited <- {false}. Only entries in next were set.
		for _, v := range next {
			e.visited[v] = 0
		}
		return next
	}

	// Deletion-invalidated vertices join the batch's affected set (their
	// values were reset by NotifyDeletions and must rebuild first).
	if len(e.pendingInvalid) > 0 {
		affected = append(append([]graph.NodeID{}, affected...), e.pendingInvalid...)
		e.pendingInvalid = e.pendingInvalid[:0]
	}

	// Lines 6-15: first pass over the affected vertices.
	curr := processRound(affected)
	e.stats.Iterations = 1
	// Lines 19-25: propagate until no vertex triggers.
	for len(curr) > 0 {
		curr = processRound(curr)
		e.stats.Iterations++
	}
	e.stats.Processed = processed.Load()
	e.stats.EdgesTraversed = edges.Load()
	e.stats.Triggered = triggered.Load()
	e.stats.Skipped = e.stats.Processed - e.stats.Triggered
}
