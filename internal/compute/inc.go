package compute

import (
	"sync/atomic"
	"time"

	"sagabench/internal/ds"
	"sagabench/internal/graph"
	"sagabench/internal/trace"
)

// incEngine implements the paper's Algorithm 1: incremental computation via
// processing amortization (vertex values persist across batches; only new
// vertices are initialized) and selective triggering (recomputation starts
// from the batch-affected vertices and propagates only changes larger than
// the triggering threshold, frontier round by frontier round, until no
// vertex triggers).
type incEngine struct {
	spec spec
	opts Options

	vals values
	// saga:allow atomicmix -- phase-separated: parallel rounds CAS/Load visited, plain access only in the sequential reset/seed phases between rounds.
	visited  []uint32
	stats    Stats
	valsCopy []float64

	// pendingInvalid holds the deletion-invalidated cone awaiting the
	// next compute phase (see trim.go).
	pendingInvalid []graph.NodeID

	// lastN is the vertex count of the previous compute phase, used by
	// globalN algorithms to detect |V| growth (see PerformAlg).
	lastN int

	// Frontier-round scratch: per-worker push buffers, the edge-balanced
	// range cuts, and two concat destinations that ping-pong so the round
	// being consumed is never the round being written.
	push  pushBufs
	cuts  []int
	front [2][]graph.NodeID
	flip  int

	// clock accumulates per-worker busy time across the phase's rounds;
	// tr scopes this phase's worker spans to the current batch trace (zero
	// value = tracing off).
	clock workerClock
	tr    trace.Ctx
}

func newIncEngine(s spec, opts Options) *incEngine {
	return &incEngine{spec: s, opts: opts}
}

func (e *incEngine) Name() string { return e.spec.name }
func (e *incEngine) Model() Model { return INC }

// Values materializes the property array.
func (e *incEngine) Values() []float64 {
	e.valsCopy = e.vals.materialize(e.valsCopy)
	return e.valsCopy
}

func (e *incEngine) Stats() Stats { return e.stats }

// SetTrace implements Traceable: worker spans of the next PerformAlg are
// recorded under ctx. The pipeline re-arms it every batch; the zero Ctx
// disables recording.
func (e *incEngine) SetTrace(ctx trace.Ctx) { e.tr = ctx }

// HandlesDeletions implements Engine: PageRank re-converges natively, and
// the monotone algorithms repair through KickStarter-style trimming
// (NotifyDeletions in trim.go).
func (e *incEngine) HandlesDeletions() bool { return e.spec.deletionSafe || e.spec.tight != nil }

// PerformAlg implements Engine.
func (e *incEngine) PerformAlg(g ds.Graph, affected []graph.NodeID) {
	n := g.NumNodes()
	csr := flatCSROf(g)
	if e.opts.WorkerTiming {
		e.clock.reset(e.opts.threads())
	}
	e.stats = Stats{}
	// Lines 2-4: initialize new vertices only (processing amortization —
	// old vertices keep the previous batch's values).
	//
	// PageRank's fresh value depends on |V|: paper line 4 assigns 1/|V|
	// at the current vertex count.
	for v := len(e.vals); v < n; v++ {
		e.vals = append(e.vals, 0)
		e.vals.set(v, e.spec.initValue(graph.NodeID(v), n))
	}
	if e.spec.hasSource && int(e.opts.Source) < n {
		e.vals.set(int(e.opts.Source), e.spec.sourceValue)
	}
	for len(e.visited) < n {
		e.visited = append(e.visited, 0)
	}

	// For globalN algorithms (PageRank) |V| is an input to every vertex's
	// function — the base term 0.15/|V| — so a vertex-count change
	// affects all vertices, not just the batch's endpoints. Widening the
	// affected set here keeps never-touched vertices (ID gaps with no
	// edges) and settled vertices correct as the graph grows; selective
	// triggering still cuts the propagation off quickly because values
	// start near the fixpoint.
	if e.spec.globalN && n != e.lastN {
		all := make([]graph.NodeID, n)
		for v := range all {
			all[v] = graph.NodeID(v)
		}
		affected = all
	} else if e.spec.degreeSensitive && len(affected) > 0 {
		// An inserted or deleted edge (u,v) changes u's out-degree, an
		// input to the rank of every OTHER out-neighbor of u — vertices
		// that are not batch endpoints. Pull the out-neighborhood of the
		// affected set into the first round; a recompute whose value does
		// not move triggers nothing, so the over-approximation is cheap.
		//
		// Deduplication reuses the engine's visited bitvector (this
		// section is single-threaded, so plain stores suffice) instead of
		// allocating a map per batch; the marks are cleared before the
		// frontier rounds, which rely on visited being all-zero.
		expanded := make([]graph.NodeID, 0, len(affected)*2)
		for _, v := range affected {
			if int(v) >= n {
				continue // no state to recompute; processRound skips these too
			}
			if e.visited[v] == 0 {
				e.visited[v] = 1
				expanded = append(expanded, v)
			}
		}
		var nbuf []graph.Neighbor
		for _, v := range affected {
			if int(v) >= n {
				continue
			}
			var ns []graph.Neighbor
			ns, nbuf = outRunOf(g, csr, v, nbuf)
			for _, nb := range ns {
				if e.visited[nb.ID] == 0 {
					e.visited[nb.ID] = 1
					expanded = append(expanded, nb.ID)
				}
			}
		}
		for _, v := range expanded {
			e.visited[v] = 0
		}
		affected = expanded
	}
	e.lastN = n

	eps := e.spec.epsilon(e.opts, n)
	threads := e.opts.threads()

	var processed, edges, triggered atomic.Uint64

	// processRound re-executes lines 9-15 for every vertex in curr,
	// returning the next frontier. Values are written in place; the
	// visited bitvector (CAS-guarded, line 14) deduplicates pushes.
	//
	// The round is partitioned by degree prefix sum (one hub's edge
	// volume is a worker's whole share instead of serializing a uniform
	// range) and workers push into per-worker buffers merged by a
	// two-pass concatenation — no lock on the next frontier.
	processRound := func(curr []graph.NodeID) []graph.NodeID {
		degOf := func(i int) int64 {
			v := curr[i]
			if int(v) >= n {
				return 0
			}
			if csr != nil {
				d := csr.OutDegree(v)
				if e.spec.pushBoth {
					d += csr.InDegree(v)
				}
				return int64(d)
			}
			d := g.OutDegree(v)
			if e.spec.pushBoth {
				d += g.InDegree(v)
			}
			return int64(d)
		}
		e.cuts = balancedCuts(e.cuts, len(curr), threads, degOf)
		k := len(e.cuts) - 1
		e.push.reset(k)
		parallelRanges(e.cuts, func(w, lo, hi int) {
			var t0 time.Time
			if e.opts.WorkerTiming {
				t0 = time.Now() // saga:allow determinism -- worker busy-time metric and trace spans only; never feeds values or frontier order.
			}
			sp := e.tr.Worker("inc.round", w)
			ctx := &recomputeCtx{g: g, csr: csr, vals: e.vals, numNodes: n, opts: e.opts}
			local := e.push.bufs[w]
			var pushBuf []graph.Neighbor
			var nProc, nTrig uint64
			for _, v := range curr[lo:hi] {
				if int(v) >= n {
					// Callers may pass endpoints the graph never
					// materialized (e.g. no-op deletes of unseen
					// vertices); there is no state to recompute.
					continue
				}
				nProc++
				old := e.vals.get(int(v))
				newv := e.spec.recompute(ctx, v)
				if e.spec.hasSource && v == e.opts.Source {
					newv = e.spec.sourceValue
				}
				e.vals.set(int(v), newv)
				trigger := false
				if eps > 0 {
					d := newv - old
					if d < 0 {
						d = -d
					}
					trigger = d > eps
				} else {
					trigger = newv != old
				}
				if !trigger {
					continue
				}
				nTrig++
				outs, ins, scratch := pushRuns(g, csr, v, e.spec.pushBoth, pushBuf)
				pushBuf = scratch
				ctx.edges += uint64(len(outs) + len(ins))
				for _, nb := range outs {
					if atomic.CompareAndSwapUint32(&e.visited[nb.ID], 0, 1) {
						local = append(local, nb.ID)
					}
				}
				for _, nb := range ins {
					if atomic.CompareAndSwapUint32(&e.visited[nb.ID], 0, 1) {
						local = append(local, nb.ID)
					}
				}
			}
			processed.Add(nProc)
			triggered.Add(nTrig)
			edges.Add(ctx.edges)
			e.push.bufs[w] = local
			// Iterations counts completed rounds and is coordinator-owned,
			// stable while this round's workers run — race-free to read and
			// cheaper than a dedicated counter (a fresh variable captured
			// here would heap-escape once per PerformAlg call).
			sp.SetInt("round", int64(e.stats.Iterations+1))
			sp.SetInt("vertices", int64(hi-lo))
			sp.SetInt("triggered", int64(nTrig))
			sp.End()
			if e.opts.WorkerTiming {
				e.clock.add(w, time.Since(t0)) // saga:allow determinism -- worker busy-time metric only.
			}
		})
		// Merge into the ping-pong destination the caller is not reading.
		next := e.push.concat(e.front[e.flip][:0], k)
		e.front[e.flip] = next
		e.flip ^= 1
		// Line 20: visited <- {false}. Only entries in next were set.
		for _, v := range next {
			e.visited[v] = 0
		}
		return next
	}

	// Deletion-invalidated vertices join the batch's affected set (their
	// values were reset by NotifyDeletions and must rebuild first).
	if len(e.pendingInvalid) > 0 {
		affected = append(append([]graph.NodeID{}, affected...), e.pendingInvalid...)
		e.pendingInvalid = e.pendingInvalid[:0]
	}

	// Lines 6-15: first pass over the affected vertices.
	curr := processRound(affected)
	e.stats.Iterations = 1
	// Lines 19-25: propagate until no vertex triggers.
	for len(curr) > 0 {
		curr = processRound(curr)
		e.stats.Iterations++
	}
	e.stats.Processed = processed.Load()
	e.stats.EdgesTraversed = edges.Load()
	e.stats.Triggered = triggered.Load()
	e.stats.Skipped = e.stats.Processed - e.stats.Triggered
	if e.opts.WorkerTiming {
		e.stats.WorkerBusyNS = e.clock.busy
	}
}
