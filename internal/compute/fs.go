package compute

import (
	"sagabench/internal/ds"
	"sagabench/internal/graph"
	"sagabench/internal/trace"
)

// fsEngine implements the recomputation-from-scratch model: every batch it
// resets the vertex properties to their initial values and reruns a
// conventional static-graph algorithm on the freshly updated topology,
// oblivious to the previous batch's results (paper Section III-B).
type fsEngine struct {
	spec spec
	opts Options

	vals     values
	stats    Stats
	valsCopy []float64

	// scratch reused across batches by the per-algorithm runners.
	// saga:allow atomicmix -- phase-separated: parallel rounds CAS/Load visited, plain access only in the sequential reset/seed phases between rounds.
	visited  []uint32
	frontier []graph.NodeID
	next     []graph.NodeID
	aux      values

	// Round scratch shared by the frontier kernels: per-worker push
	// buffers and the edge-balanced range cuts.
	push pushBufs
	cuts []int

	// clock accumulates per-worker busy time across the phase's rounds;
	// tr scopes this phase's worker spans to the current batch trace (zero
	// value = tracing off).
	clock workerClock
	tr    trace.Ctx
}

func newFSEngine(s spec, opts Options) *fsEngine {
	return &fsEngine{spec: s, opts: opts}
}

func (e *fsEngine) Name() string { return e.spec.name }
func (e *fsEngine) Model() Model { return FS }

// Values materializes the property array.
func (e *fsEngine) Values() []float64 {
	e.valsCopy = e.vals.materialize(e.valsCopy)
	return e.valsCopy
}

func (e *fsEngine) Stats() Stats { return e.stats }

// SetTrace implements Traceable: worker spans of the next PerformAlg are
// recorded under ctx. The pipeline re-arms it every batch; the zero Ctx
// disables recording.
func (e *fsEngine) SetTrace(ctx trace.Ctx) { e.tr = ctx }

// HandlesDeletions implements Engine: recomputation from scratch is
// correct under any topology change.
func (e *fsEngine) HandlesDeletions() bool { return true }

// PerformAlg implements Engine.
func (e *fsEngine) PerformAlg(g ds.Graph, _ []graph.NodeID) {
	n := g.NumNodes()
	if e.opts.WorkerTiming {
		e.clock.reset(e.opts.threads())
	}
	e.stats = Stats{}
	if cap(e.vals) < n {
		e.vals = make(values, n)
	}
	e.vals = e.vals[:n]
	for v := range e.vals {
		e.vals.set(v, e.spec.initValue(graph.NodeID(v), n))
	}
	if e.spec.hasSource && int(e.opts.Source) < n {
		e.vals.set(int(e.opts.Source), e.spec.sourceValue)
	}
	if n == 0 {
		if e.opts.WorkerTiming {
			e.stats.WorkerBusyNS = e.clock.busy
		}
		return
	}
	e.spec.fsRun(e, g)
	if e.opts.WorkerTiming {
		e.stats.WorkerBusyNS = e.clock.busy
	}
}

// resetVisited clears and sizes the visited scratch.
func (e *fsEngine) resetVisited(n int) {
	if cap(e.visited) < n {
		e.visited = make([]uint32, n)
		return
	}
	e.visited = e.visited[:n]
	for i := range e.visited {
		e.visited[i] = 0
	}
}
