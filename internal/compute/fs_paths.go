package compute

import (
	"math"

	"sagabench/internal/ds"
	"sagabench/internal/graph"
)

func floatBits(f float64) uint64     { return math.Float64bits(f) }
func floatFromBits(b uint64) float64 { return math.Float64frombits(b) }

// fsSSSP is delta-stepping shortest paths (the optimized GAP FS
// implementation the paper credits for SSSP's FS competitiveness): vertices
// are binned by tentative distance into buckets of width delta; buckets are
// drained in order, re-relaxing within a bucket until it stabilizes before
// moving to the next.
func fsSSSP(e *fsEngine, g ds.Graph) {
	n := g.NumNodes()
	src := e.opts.Source
	if int(src) >= n {
		return
	}
	csr := flatCSROf(g)
	delta := e.opts.delta()
	dist := e.vals
	buckets := make([][]graph.NodeID, 0, 64)
	place := func(v graph.NodeID, d float64) {
		idx := int(d / delta)
		for len(buckets) <= idx {
			buckets = append(buckets, nil)
		}
		buckets[idx] = append(buckets[idx], v)
	}
	place(src, 0)

	var buf []graph.Neighbor
	var processed, edges uint64
	for i := 0; i < len(buckets); i++ {
		// Re-drain bucket i until no relaxation re-inserts into it
		// (light-edge re-relaxation of classic delta-stepping).
		for len(buckets[i]) > 0 {
			frontier := buckets[i]
			buckets[i] = nil
			e.stats.Iterations++
			for _, u := range frontier {
				// Skip stale entries that were settled at a
				// smaller distance by an earlier relaxation.
				if int(dist.get(int(u))/delta) < i {
					continue
				}
				processed++
				du := dist.get(int(u))
				var ns []graph.Neighbor
				ns, buf = outRunOf(g, csr, u, buf)
				edges += uint64(len(ns))
				for _, nb := range ns {
					nd := du + float64(nb.Weight)
					if nd < dist.get(int(nb.ID)) {
						dist.set(int(nb.ID), nd)
						place(nb.ID, nd)
					}
				}
			}
		}
	}
	e.stats.Processed = processed
	e.stats.EdgesTraversed = edges
}

// fsSSWP is single-source widest paths (not in GAP; implemented from
// scratch, paper Section III-B): label-correcting propagation of the
// max-min vertex function from the source over out-edges.
func fsSSWP(e *fsEngine, g ds.Graph) {
	n := g.NumNodes()
	src := e.opts.Source
	if int(src) >= n {
		return
	}
	csr := flatCSROf(g)
	width := e.vals
	e.resetVisited(n)
	frontier := append(e.frontier[:0], src)
	e.visited[src] = 1
	var buf []graph.Neighbor
	var processed, edges uint64
	for len(frontier) > 0 {
		next := e.next[:0]
		e.stats.Iterations++
		for _, u := range frontier {
			e.visited[u] = 0
			processed++
			wu := width.get(int(u))
			var ns []graph.Neighbor
			ns, buf = outRunOf(g, csr, u, buf)
			edges += uint64(len(ns))
			for _, nb := range ns {
				w := math.Min(wu, float64(nb.Weight))
				if w > width.get(int(nb.ID)) {
					width.set(int(nb.ID), w)
					if e.visited[nb.ID] == 0 {
						e.visited[nb.ID] = 1
						next = append(next, nb.ID)
					}
				}
			}
		}
		frontier, e.next = next, frontier
	}
	e.frontier = frontier[:0]
	e.stats.Processed = processed
	e.stats.EdgesTraversed = edges
}
