package compute

import (
	"sort"

	"sagabench/internal/ds"
	"sagabench/internal/graph"
)

// DeletionAware is implemented by engines that can repair their state when
// the update phase removes edges. core.Pipeline.ProcessMixed calls
// NotifyDeletions after the topology change and before PerformAlg.
type DeletionAware interface {
	NotifyDeletions(g ds.Graph, dels graph.Batch)
}

// WeightChangeAware is implemented by engines that must additionally be
// told when an insert OVERWRITES an existing edge with a different weight.
// For the monotone weighted algorithms (SSSP, SSWP) a weight change is a
// deletion-like event: a value derived through the old weight may now be
// unreachable (SSWP: the edge narrowed; SSSP: the edge lengthened) and
// plain selective triggering cannot repair it when the stale value is
// self-supporting around a cycle. The pipeline reports the overwritten
// edges — carrying their OLD weights — through NotifyDeletions together
// with any true deletions, in one call, so the invalidation cone is grown
// against a consistent pre-reset value array.
type WeightChangeAware interface {
	DeletionAware
	// WantsWeightChanges reports whether the overwrite scan is needed at
	// all; weight-insensitive algorithms (BFS, CC, MC, PR) skip it.
	WantsWeightChanges() bool
}

// WantsWeightChanges implements WeightChangeAware: only the monotone
// algorithms whose values read edge weights need overwrite notifications.
func (e *incEngine) WantsWeightChanges() bool {
	return e.spec.weighted && e.spec.tight != nil
}

// NotifyDeletions implements KickStarter-style trimmed approximation (Vora
// et al., the paper's reference [12]) for the monotone incremental
// algorithms: a deleted edge may have been the support of its endpoint's
// value, and that endpoint the support of its dependents, so the engine
//
//  1. seeds an invalidation cone with deletion endpoints whose value was
//     *tight* through the removed edge (it could have been derived from
//     the other endpoint across that edge),
//  2. grows the cone along tight edges in the value-dependence direction
//     (out-edges for the pull-from-in-neighbors algorithms, both
//     directions for connectivity),
//  3. resets the cone to initial values, and
//  4. queues the cone as affected vertices, so the next PerformAlg's
//     selective triggering rebuilds them from their intact neighbors.
//
// Values outside the cone never depended on a deleted edge, so they remain
// exact; cone values are rebuilt monotonically from the survivors.
// PageRank needs no trimming — its damped recompute is a contraction that
// re-converges after any topology change — so it returns immediately.
func (e *incEngine) NotifyDeletions(g ds.Graph, dels graph.Batch) {
	if e.spec.tight == nil {
		return // non-monotone (PageRank): plain recompute handles it
	}
	n := g.NumNodes()
	for len(e.vals) < n {
		// Deletions arrive with adds in one mixed batch; make sure the
		// value array covers any vertices the adds introduced.
		e.vals = append(e.vals, 0)
		e.vals.set(len(e.vals)-1, e.spec.initValue(graph.NodeID(len(e.vals)-1), n))
	}
	invalid := make(map[graph.NodeID]bool)
	var stack []graph.NodeID
	mark := func(v graph.NodeID) {
		if int(v) < n && !invalid[v] && !(e.spec.hasSource && v == e.opts.Source) {
			invalid[v] = true
			stack = append(stack, v)
		}
	}
	// Seed: endpoints whose value was tight through a removed edge. An
	// undirected deletion removes both orientations from the store, so the
	// mirrored dependence (Src derived from Dst) must seed too — otherwise
	// Src-side values survive with phantom support.
	mirror := !g.Directed()
	for _, d := range dels {
		if int(d.Src) >= n || int(d.Dst) >= n {
			continue
		}
		w := float64(d.Weight)
		if e.spec.tight(e.vals.get(int(d.Src)), w, e.vals.get(int(d.Dst))) {
			mark(d.Dst)
		}
		if (e.spec.pushBoth || mirror) && e.spec.tight(e.vals.get(int(d.Dst)), w, e.vals.get(int(d.Src))) {
			mark(d.Src)
		}
	}
	// Grow the cone along tight dependence edges, judging tightness with
	// the pre-reset values.
	var buf []graph.Neighbor
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		vv := e.vals.get(int(v))
		buf = g.OutNeigh(v, buf[:0])
		if e.spec.pushBoth {
			buf = g.InNeigh(v, buf)
		}
		for _, nb := range buf {
			if invalid[nb.ID] {
				continue
			}
			if e.spec.tight(vv, float64(nb.Weight), e.vals.get(int(nb.ID))) {
				mark(nb.ID)
			}
		}
	}
	// Reset the cone and queue it for the next compute phase. The value
	// resets commute, but the queue must not leak map order into the
	// next phase's trigger sequence, so it is canonicalized by the sort.
	e.pendingInvalid = e.pendingInvalid[:0]
	// saga:allow determinism -- per-key resets commute; queue order is canonicalized by the sort below.
	for v := range invalid {
		e.vals.set(int(v), e.spec.initValue(v, n))
		e.pendingInvalid = append(e.pendingInvalid, v)
	}
	sort.Slice(e.pendingInvalid, func(i, j int) bool { return e.pendingInvalid[i] < e.pendingInvalid[j] })
}
