package compute

import (
	"math"
	"sync"
	"testing"
)

func TestValuesRoundTrip(t *testing.T) {
	v := make(values, 4)
	v.set(0, 3.5)
	v.set(1, math.Inf(1))
	v.set(2, -0.25)
	if v.get(0) != 3.5 || !math.IsInf(v.get(1), 1) || v.get(2) != -0.25 || v.get(3) != 0 {
		t.Fatalf("round trip broken: %v %v %v %v", v.get(0), v.get(1), v.get(2), v.get(3))
	}
	out := v.materialize(nil)
	if len(out) != 4 || out[0] != 3.5 {
		t.Fatalf("materialize: %v", out)
	}
	// Reusing the destination buffer must not retain stale entries.
	v2 := make(values, 2)
	v2.set(0, 7)
	out = v2.materialize(out)
	if len(out) != 2 || out[0] != 7 {
		t.Fatalf("materialize reuse: %v", out)
	}
}

// TestValuesConcurrent verifies the atomic access discipline under the
// race detector: concurrent writers and readers on the same slots.
func TestValuesConcurrent(t *testing.T) {
	v := make(values, 8)
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				v.set(i%8, float64(w))
				_ = v.get((i + 3) % 8)
			}
		}(w)
	}
	wg.Wait()
	for i := 0; i < 8; i++ {
		if x := v.get(i); x < 0 || x > 3 {
			t.Fatalf("slot %d holds torn value %v", i, x)
		}
	}
}

func TestPREpsilonScaling(t *testing.T) {
	// Explicit epsilon wins.
	if got := prEpsilon(Options{Epsilon: 1e-3}, 100); got != 1e-3 {
		t.Errorf("explicit epsilon ignored: %v", got)
	}
	// Default tracks 0.5/|V| (the paper's 1e-7 at |V|≈4.8M).
	if got := prEpsilon(Options{}, 5_000_000); math.Abs(got-1e-7) > 2e-8 {
		t.Errorf("paper-scale epsilon=%v want ~1e-7", got)
	}
	if got := prEpsilon(Options{}, 0); got != 1e-7 {
		t.Errorf("degenerate graph epsilon=%v", got)
	}
}

func TestOptionsDefaults(t *testing.T) {
	var o Options
	if o.threads() != 1 {
		t.Error("threads default")
	}
	if o.prTolerance() != 1e-4 {
		t.Error("PR tolerance default")
	}
	if o.prMaxIters() != 20 {
		t.Error("PR iteration default")
	}
	if o.delta() != 8 {
		t.Error("delta default")
	}
}

func TestParallelForCoverage(t *testing.T) {
	for _, threads := range []int{1, 3, 8, 100} {
		var mu sync.Mutex
		seen := make([]int, 37)
		parallelFor(37, threads, func(lo, hi int) {
			mu.Lock()
			defer mu.Unlock()
			for i := lo; i < hi; i++ {
				seen[i]++
			}
		})
		for i, n := range seen {
			if n != 1 {
				t.Fatalf("threads=%d: index %d visited %d times", threads, i, n)
			}
		}
	}
	parallelFor(0, 4, func(lo, hi int) { t.Fatal("fn called for n=0") })
}

func TestGrowValues(t *testing.T) {
	v := growValues([]float64{1}, 3, 9)
	if len(v) != 3 || v[0] != 1 || v[1] != 9 || v[2] != 9 {
		t.Fatalf("growValues: %v", v)
	}
	if got := growValues(v, 2, 0); len(got) != 3 {
		t.Fatal("growValues must never shrink")
	}
}
