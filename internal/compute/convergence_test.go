package compute_test

import (
	"math/rand"
	"testing"

	"sagabench/internal/compute"
	"sagabench/internal/ds"
	_ "sagabench/internal/ds/all"
	"sagabench/internal/graph"
)

// mixedStep is one window of a convergence stream.
type mixedStep struct {
	adds graph.Batch
	dels graph.Batch
}

// mixedStream builds a deterministic stream that exercises every INC
// repair path: fresh inserts, re-inserts that overwrite weights (salted by
// round), deletions of live edges (carrying their current weight, which
// the trim's tightness test requires), and no-op deletions of absent
// edges.
func mixedStream(seed int64, rounds, batchSize, numNodes int) []mixedStep {
	rng := rand.New(rand.NewSource(seed))
	type pair struct{ src, dst graph.NodeID }
	cur := map[pair]graph.Weight{}
	var livePairs []pair
	weight := func(p pair, salt int) graph.Weight {
		return graph.Weight((uint32(p.src)*2654435761+uint32(p.dst)*40503+uint32(salt)*97)%29) + 1
	}
	steps := make([]mixedStep, rounds)
	for r := range steps {
		adds := make(graph.Batch, batchSize)
		for i := range adds {
			p := pair{graph.NodeID(rng.Intn(numNodes)), graph.NodeID(rng.Intn(numNodes))}
			w := weight(p, r)
			if _, ok := cur[p]; !ok {
				livePairs = append(livePairs, p)
			}
			cur[p] = w
			adds[i] = graph.Edge{Src: p.src, Dst: p.dst, Weight: w}
		}
		var dels graph.Batch
		if r%2 == 1 {
			for i := 0; i < batchSize/4 && len(livePairs) > 0; i++ {
				j := rng.Intn(len(livePairs))
				p := livePairs[j]
				if w, ok := cur[p]; ok {
					dels = append(dels, graph.Edge{Src: p.src, Dst: p.dst, Weight: w})
					delete(cur, p)
				}
				livePairs[j] = livePairs[len(livePairs)-1]
				livePairs = livePairs[:len(livePairs)-1]
			}
			// And a deletion of an edge that was never inserted.
			dels = append(dels, graph.Edge{Src: graph.NodeID(numNodes), Dst: graph.NodeID(numNodes + 1), Weight: 1})
		}
		steps[r] = mixedStep{adds: adds, dels: dels}
	}
	return steps
}

// TestIncConvergesToFS streams mixed batches through an INC engine —
// following the pipeline's notification protocol (weight overwrites and
// deletions reported together for KickStarter-style invalidation) — and
// checks, for all six algorithms, that the incremental values on the final
// graph equal a fresh FS run over the same final topology. This is the
// paper's correctness contract for processing amortization plus selective
// triggering: incrementality must never change the answer, only the work.
func TestIncConvergesToFS(t *testing.T) {
	opts := compute.Options{Source: 0, Threads: 4, PRTolerance: 1e-12, PRMaxIters: 200, Epsilon: 1e-12}
	for _, directed := range []bool{true, false} {
		steps := mixedStream(41, 8, 300, 80)
		for _, alg := range compute.AlgNames() {
			g := ds.MustNew("adjshared", ds.Config{Directed: directed, Threads: 4})
			inc := compute.MustNewEngine(alg, compute.INC, opts)

			for _, st := range steps {
				var olds graph.Batch
				if wca, ok := inc.(compute.WeightChangeAware); ok && wca.WantsWeightChanges() {
					olds = ds.Overwritten(g, st.adds)
				}
				g.Update(st.adds)
				if len(st.dels) > 0 {
					if err := g.(ds.Deleter).Delete(st.dels); err != nil {
						t.Fatalf("%s: delete: %v", alg, err)
					}
				}
				if invalidating := append(olds, st.dels...); len(invalidating) > 0 {
					if da, ok := inc.(compute.DeletionAware); ok {
						da.NotifyDeletions(g, invalidating)
					}
				}
				aff := affectedOf(append(append(graph.Batch{}, st.adds...), st.dels...))
				inc.PerformAlg(g, aff)
			}

			// Fresh FS run on the same final topology (the full stream
			// replayed without incremental history; replaying rather than
			// re-inserting ExportEdges keeps NumNodes identical even when
			// the highest-ID vertex ended up isolated).
			g2 := ds.MustNew("adjshared", ds.Config{Directed: directed, Threads: 4})
			for _, st := range steps {
				g2.Update(st.adds)
				if len(st.dels) > 0 {
					if err := g2.(ds.Deleter).Delete(st.dels); err != nil {
						t.Fatalf("%s: replay delete: %v", alg, err)
					}
				}
			}
			fs := compute.MustNewEngine(alg, compute.FS, opts)
			fs.PerformAlg(g2, nil)

			label := alg + "/directed=" + boolStr(directed)
			valsEqual(t, label, inc.Values(), fs.Values(), compute.Tolerance(alg))
		}
	}
}

// TestIncTrimRepairsDeletionCascade aims a stream straight at the trim
// path: build a long chain from the source, then delete an edge near the
// source so almost every downstream value depended on it. The monotone INC
// engines must invalidate the whole dependent cone and rebuild it (here:
// to unreachable), matching FS on the post-deletion graph.
func TestIncTrimRepairsDeletionCascade(t *testing.T) {
	const chainLen = 40
	opts := compute.Options{Source: 0, Threads: 2, Epsilon: 1e-12}
	var chain graph.Batch
	for i := 0; i < chainLen; i++ {
		chain = append(chain, graph.Edge{Src: graph.NodeID(i), Dst: graph.NodeID(i + 1), Weight: graph.Weight(i%7 + 1)})
	}
	// A side branch that survives the cut.
	chain = append(chain, graph.Edge{Src: 0, Dst: 50, Weight: 9})

	for _, alg := range []string{"bfs", "cc", "mc", "sssp", "sswp"} {
		g := ds.MustNew("adjshared", ds.Config{Directed: true, Threads: 2})
		inc := compute.MustNewEngine(alg, compute.INC, opts)
		g.Update(chain)
		inc.PerformAlg(g, affectedOf(chain))

		cut := graph.Batch{{Src: 2, Dst: 3, Weight: 3}}
		if err := g.(ds.Deleter).Delete(cut); err != nil {
			t.Fatal(err)
		}
		inc.(compute.DeletionAware).NotifyDeletions(g, cut)
		inc.PerformAlg(g, affectedOf(cut))

		g2 := ds.MustNew("adjshared", ds.Config{Directed: true, Threads: 2})
		g2.Update(ds.ExportEdges(g))
		fs := compute.MustNewEngine(alg, compute.FS, opts)
		fs.PerformAlg(g2, nil)

		valsEqual(t, alg+" after cascade cut", inc.Values(), fs.Values(), compute.Tolerance(alg))
	}
}

func boolStr(b bool) string {
	if b {
		return "true"
	}
	return "false"
}
