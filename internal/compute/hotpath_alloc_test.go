package compute

import (
	"testing"
	"time"

	"sagabench/internal/ds"
	"sagabench/internal/graph"
)

// These assertions cross-validate the saga:hotpath annotations in flat.go
// (statically enforced by sagavet's hotalloc analyzer): once buffers are
// warm, the kernel inner-loop helpers must not touch the allocator. The
// one audited allocation (concat's grow-on-demand make) is exercised cold
// first so the steady-state run measures the reuse path the saga:allow
// comment promises.

func hotpathTestGraph(t *testing.T) (ds.Graph, *graph.CSR) {
	t.Helper()
	g := ds.MustNew("adjshared", ds.Config{Directed: true, Threads: 1})
	var batch graph.Batch
	for i := 1; i <= 16; i++ {
		batch = append(batch, graph.Edge{Src: 0, Dst: graph.NodeID(i), Weight: 1})
		batch = append(batch, graph.Edge{Src: graph.NodeID(i), Dst: 0, Weight: 1})
	}
	g.Update(batch)
	return g, graph.BuildCSR(g.NumNodes(), ds.ExportEdgesParallel(g, 1))
}

func TestOutRunOfDoesNotAllocate(t *testing.T) {
	g, csr := hotpathTestGraph(t)
	buf := make([]graph.Neighbor, 0, 64)
	var run []graph.Neighbor

	if allocs := testing.AllocsPerRun(100, func() {
		for v := graph.NodeID(0); int(v) < g.NumNodes(); v++ {
			run, buf = outRunOf(g, csr, v, buf)
		}
	}); allocs != 0 {
		t.Errorf("outRunOf (flat path) allocates %.1f times per sweep", allocs)
	}
	if allocs := testing.AllocsPerRun(100, func() {
		for v := graph.NodeID(0); int(v) < g.NumNodes(); v++ {
			run, buf = outRunOf(g, nil, v, buf)
		}
	}); allocs != 0 {
		t.Errorf("outRunOf (interface path) allocates %.1f times per sweep", allocs)
	}
	_ = run
}

func TestPushRunsDoesNotAllocate(t *testing.T) {
	g, csr := hotpathTestGraph(t)
	buf := make([]graph.Neighbor, 0, 128)
	var a, b []graph.Neighbor

	if allocs := testing.AllocsPerRun(100, func() {
		for v := graph.NodeID(0); int(v) < g.NumNodes(); v++ {
			a, b, buf = pushRuns(g, csr, v, true, buf)
		}
	}); allocs != 0 {
		t.Errorf("pushRuns (flat path) allocates %.1f times per sweep", allocs)
	}
	if allocs := testing.AllocsPerRun(100, func() {
		for v := graph.NodeID(0); int(v) < g.NumNodes(); v++ {
			a, b, buf = pushRuns(g, nil, v, true, buf)
		}
	}); allocs != 0 {
		t.Errorf("pushRuns (interface path) allocates %.1f times per sweep", allocs)
	}
	_, _ = a, b
}

func TestConcatSteadyStateDoesNotAllocate(t *testing.T) {
	var pb pushBufs
	pb.reset(4)
	for w := 0; w < 4; w++ {
		for i := 0; i < 100; i++ {
			pb.bufs[w] = append(pb.bufs[w], graph.NodeID(i))
		}
	}
	dst := pb.concat(nil, 4) // cold: the audited make sizes dst
	if allocs := testing.AllocsPerRun(100, func() {
		dst = pb.concat(dst, 4)
	}); allocs != 0 {
		t.Errorf("concat steady state allocates %.1f times per merge", allocs)
	}
	if len(dst) != 400 {
		t.Fatalf("concat merged %d vertices, want 400", len(dst))
	}
}

func TestWorkerClockAddDoesNotAllocate(t *testing.T) {
	var c workerClock
	c.reset(4)
	if allocs := testing.AllocsPerRun(1000, func() {
		for w := 0; w < 4; w++ {
			c.add(w, time.Microsecond)
		}
	}); allocs != 0 {
		t.Errorf("workerClock.add allocates %.1f times per round", allocs)
	}
}
