package snapshot

import (
	"fmt"
	"strings"
	"testing"

	"sagabench/internal/graph"
)

// TestStoreAtTable sweeps the checkpoint-plus-log reconstruction across
// the configurations that stress its boundary arithmetic: a checkpoint at
// every batch (pure-checkpoint), a cadence that never fires past batch 0
// (pure-log), cadences whose boundaries land mid-stream, delete-heavy
// deltas, and both directednesses. Every observed batch index is
// materialized and compared against a full replay.
func TestStoreAtTable(t *testing.T) {
	cases := []struct {
		name        string
		every       int
		batches     int
		directed    bool
		deleteHeavy bool
		wantChecks  int
	}{
		{"checkpoint-every-batch", 1, 9, true, false, 9},
		{"pure-log", 1000, 9, true, false, 1}, // only batch 0 checkpoints
		{"boundary-cadence", 4, 12, true, false, 3},
		{"cadence-equals-stream", 6, 6, true, false, 1},
		{"undirected", 3, 10, false, false, 4},
		{"delete-heavy", 3, 10, true, true, 4},
		{"undirected-delete-heavy", 4, 12, false, true, 3},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			adds, dels := randomStream(17, tc.batches, 80, 32, tc.deleteHeavy)
			if tc.deleteHeavy {
				// Amplify deletions: also drop the first half of each
				// batch's own insertions, so some snapshots shrink
				// between checkpoints.
				for b := range adds {
					dels[b] = append(dels[b], adds[b][:len(adds[b])/2]...)
				}
			}
			s := New(Config{Directed: tc.directed, Every: tc.every})
			for b := range adds {
				s.Observe(adds[b], dels[b])
			}
			if got := s.Batches(); got != tc.batches {
				t.Fatalf("Batches=%d want %d", got, tc.batches)
			}
			if got := s.Checkpoints(); got != tc.wantChecks {
				t.Fatalf("Checkpoints=%d want %d", got, tc.wantChecks)
			}
			for i := 0; i < tc.batches; i++ {
				c, err := s.At(i)
				if err != nil {
					t.Fatalf("At(%d): %v", i, err)
				}
				csrEqualsOracle(t, fmt.Sprintf("At(%d)", i), c, expectedAt(adds, dels, i, tc.directed))
			}
			csrEqualsOracle(t, "Latest", s.Latest(), expectedAt(adds, dels, tc.batches-1, tc.directed))
		})
	}
}

// TestStoreAtErrors pins the error text for out-of-range indices so CLI
// surfaces stay stable.
func TestStoreAtErrors(t *testing.T) {
	cases := []struct {
		name    string
		observe int
		at      int
		wantErr string
	}{
		{"empty-store", 0, 0, "outside observed range [0,0)"},
		{"negative", 3, -1, "outside observed range [0,3)"},
		{"exactly-past-end", 3, 3, "outside observed range [0,3)"},
		{"far-future", 3, 100, "outside observed range [0,3)"},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			s := New(Config{Directed: true})
			for b := 0; b < tc.observe; b++ {
				s.Observe(graph.Batch{{Src: 0, Dst: graph.NodeID(b + 1), Weight: 1}}, nil)
			}
			_, err := s.At(tc.at)
			if err == nil {
				t.Fatalf("At(%d) on %d-batch store succeeded", tc.at, tc.observe)
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("At(%d) error %q lacks %q", tc.at, err, tc.wantErr)
			}
		})
	}
}

// TestStoreDefaultCadence: a zero/negative Every falls back to the
// documented default of 8.
func TestStoreDefaultCadence(t *testing.T) {
	for _, every := range []int{0, -3} {
		s := New(Config{Directed: true, Every: every})
		for b := 0; b < 17; b++ {
			s.Observe(graph.Batch{{Src: 0, Dst: graph.NodeID(b), Weight: 1}}, nil)
		}
		if got := s.Checkpoints(); got != 3 { // batches 0, 8, 16
			t.Fatalf("Every=%d: Checkpoints=%d want 3", every, got)
		}
	}
}

// TestStoreEmptyAndDeleteOnlyBatches: batches that add nothing (or only
// delete) still advance the observed range and reconstruct exactly.
func TestStoreEmptyAndDeleteOnlyBatches(t *testing.T) {
	s := New(Config{Directed: true, Every: 2})
	e01 := graph.Edge{Src: 0, Dst: 1, Weight: 1}
	e12 := graph.Edge{Src: 1, Dst: 2, Weight: 2}
	s.Observe(graph.Batch{e01, e12}, nil) // batch 0
	s.Observe(nil, nil)                   // batch 1: empty
	s.Observe(nil, graph.Batch{e01})      // batch 2: delete-only
	if s.Batches() != 3 {
		t.Fatalf("Batches=%d want 3", s.Batches())
	}
	wantEdges := []int{2, 2, 1}
	for i, want := range wantEdges {
		c, err := s.At(i)
		if err != nil {
			t.Fatalf("At(%d): %v", i, err)
		}
		if c.NumEdges() != want {
			t.Fatalf("At(%d): %d edges want %d", i, c.NumEdges(), want)
		}
	}
	if got := s.Latest().NumEdges(); got != 1 {
		t.Fatalf("Latest: %d edges want 1", got)
	}
	// The vertex space never shrinks: vertex 2 remains addressable after
	// the delete even though vertex 0 lost its only edge.
	c, err := s.At(2)
	if err != nil {
		t.Fatal(err)
	}
	if c.NumNodes() < 3 {
		t.Fatalf("At(2): %d nodes want >=3", c.NumNodes())
	}
	if c.OutDegree(0) != 0 || c.OutDegree(1) != 1 {
		t.Fatalf("At(2): deg0=%d deg1=%d want 0,1", c.OutDegree(0), c.OutDegree(1))
	}
}
