package snapshot

import (
	"math/rand"
	"testing"

	"sagabench/internal/graph"
)

func randomStream(seed int64, batches, size, nodes int, withDels bool) ([]graph.Batch, []graph.Batch) {
	rng := rand.New(rand.NewSource(seed))
	adds := make([]graph.Batch, batches)
	dels := make([]graph.Batch, batches)
	var live graph.Batch
	for b := 0; b < batches; b++ {
		for i := 0; i < size; i++ {
			e := graph.Edge{
				Src:    graph.NodeID(rng.Intn(nodes)),
				Dst:    graph.NodeID(rng.Intn(nodes)),
				Weight: graph.Weight(rng.Intn(9) + 1),
			}
			adds[b] = append(adds[b], e)
			live = append(live, e)
		}
		if withDels && b > 0 {
			for i := 0; i < size/4; i++ {
				dels[b] = append(dels[b], live[rng.Intn(len(live))])
			}
		}
	}
	return adds, dels
}

// expectedAt replays the whole stream up to batch i on a fresh oracle.
func expectedAt(adds, dels []graph.Batch, i int, directed bool) *graph.Oracle {
	o := graph.NewOracle(directed)
	for b := 0; b <= i; b++ {
		o.Update(adds[b])
		o.Delete(dels[b])
	}
	return o
}

func csrEqualsOracle(t *testing.T, what string, c *graph.CSR, o *graph.Oracle) {
	t.Helper()
	if c.NumEdges() != o.NumEdges() {
		t.Fatalf("%s: %d edges want %d", what, c.NumEdges(), o.NumEdges())
	}
	for v := 0; v < o.NumNodes(); v++ {
		id := graph.NodeID(v)
		want := o.Out(id)
		got := c.Out(id)
		if len(got) != len(want) {
			t.Fatalf("%s: vertex %d out %d want %d", what, v, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("%s: vertex %d slot %d: %v want %v", what, v, i, got[i], want[i])
			}
		}
	}
}

func TestSnapshotsMatchReplay(t *testing.T) {
	for _, directed := range []bool{true, false} {
		for _, withDels := range []bool{false, true} {
			adds, dels := randomStream(4, 20, 150, 60, withDels)
			s := New(Config{Directed: directed, Every: 5})
			for b := range adds {
				s.Observe(adds[b], dels[b])
			}
			if s.Batches() != 20 {
				t.Fatalf("Batches=%d want 20", s.Batches())
			}
			if s.Checkpoints() != 4 { // batches 0, 5, 10, 15
				t.Fatalf("Checkpoints=%d want 4", s.Checkpoints())
			}
			// Every historical snapshot must equal a full replay.
			for i := 0; i < 20; i += 3 {
				c, err := s.At(i)
				if err != nil {
					t.Fatal(err)
				}
				csrEqualsOracle(t, "snapshot", c, expectedAt(adds, dels, i, directed))
			}
			// The latest view matches the final snapshot.
			csrEqualsOracle(t, "latest", s.Latest(), expectedAt(adds, dels, 19, directed))
		}
	}
}

func TestSnapshotBounds(t *testing.T) {
	s := New(Config{Directed: true})
	if _, err := s.At(0); err == nil {
		t.Error("At on empty store should error")
	}
	s.Observe(graph.Batch{{Src: 0, Dst: 1, Weight: 1}}, nil)
	if _, err := s.At(-1); err == nil {
		t.Error("negative index should error")
	}
	if _, err := s.At(1); err == nil {
		t.Error("future index should error")
	}
	c, err := s.At(0)
	if err != nil || c.NumEdges() != 1 {
		t.Fatalf("At(0): %v %v", c, err)
	}
}

// TestSnapshotImmutability: materialized snapshots must not alias live
// state — later batches cannot mutate an earlier snapshot.
func TestSnapshotImmutability(t *testing.T) {
	s := New(Config{Directed: true, Every: 100})
	s.Observe(graph.Batch{{Src: 0, Dst: 1, Weight: 1}}, nil)
	early, err := s.At(0)
	if err != nil {
		t.Fatal(err)
	}
	s.Observe(graph.Batch{{Src: 1, Dst: 2, Weight: 1}, {Src: 0, Dst: 3, Weight: 1}}, nil)
	if early.NumEdges() != 1 || early.OutDegree(0) != 1 {
		t.Fatalf("early snapshot mutated: edges=%d deg0=%d", early.NumEdges(), early.OutDegree(0))
	}
	late, err := s.At(1)
	if err != nil {
		t.Fatal(err)
	}
	if late.NumEdges() != 3 {
		t.Fatalf("late snapshot edges=%d want 3", late.NumEdges())
	}
}
