package snapshot

import (
	"math"
	"testing"

	"sagabench/internal/compute"
	"sagabench/internal/graph"
)

func TestFrozenRunsAlgorithms(t *testing.T) {
	s := New(Config{Directed: true, Every: 2})
	s.Observe(graph.Batch{
		{Src: 0, Dst: 1, Weight: 2},
		{Src: 1, Dst: 2, Weight: 3},
	}, nil)
	s.Observe(graph.Batch{{Src: 2, Dst: 3, Weight: 5}}, nil)

	// BFS on the first snapshot: vertex 3 does not exist yet.
	c0, err := s.At(0)
	if err != nil {
		t.Fatal(err)
	}
	e := compute.MustNewEngine("bfs", compute.FS, compute.Options{})
	e.PerformAlg(Freeze(c0), nil)
	v0 := e.Values()
	if len(v0) != 3 || v0[0] != 0 || v0[1] != 1 || v0[2] != 2 {
		t.Fatalf("snapshot-0 BFS: %v", v0)
	}

	// SSSP on the final snapshot sees the full chain with weights.
	c1, err := s.At(1)
	if err != nil {
		t.Fatal(err)
	}
	sp := compute.MustNewEngine("sssp", compute.FS, compute.Options{})
	sp.PerformAlg(Freeze(c1), nil)
	v1 := sp.Values()
	want := []float64{0, 2, 5, 10}
	for v := range want {
		if v1[v] != want[v] {
			t.Fatalf("snapshot-1 SSSP[%d]=%v want %v", v, v1[v], want[v])
		}
	}
	_ = math.Inf
}

func TestFrozenIsImmutable(t *testing.T) {
	s := New(Config{Directed: true})
	s.Observe(graph.Batch{{Src: 0, Dst: 1, Weight: 1}}, nil)
	c, err := s.At(0)
	if err != nil {
		t.Fatal(err)
	}
	f := Freeze(c)
	defer func() {
		if recover() == nil {
			t.Fatal("Update on a frozen snapshot should panic")
		}
	}()
	f.Update(graph.Batch{{Src: 1, Dst: 2, Weight: 1}})
}

func TestFrozenBounds(t *testing.T) {
	s := New(Config{Directed: true})
	s.Observe(graph.Batch{{Src: 0, Dst: 1, Weight: 1}}, nil)
	c, _ := s.At(0)
	f := Freeze(c)
	if f.OutDegree(99) != 0 || f.InDegree(99) != 0 {
		t.Fatal("out-of-range degree")
	}
	if len(f.OutNeigh(99, nil)) != 0 || len(f.InNeigh(99, nil)) != 0 {
		t.Fatal("out-of-range adjacency")
	}
	if f.NumNodes() != 2 || f.NumEdges() != 1 || !f.Directed() {
		t.Fatalf("identity: n=%d e=%d", f.NumNodes(), f.NumEdges())
	}
}
