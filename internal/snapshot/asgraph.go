package snapshot

import (
	"sagabench/internal/ds"
	"sagabench/internal/graph"
)

// Frozen adapts a CSR snapshot to the ds.Graph API so the compute engines
// can run any of the six algorithms on a historical topology (temporal
// analytics — "what was the PageRank three batches ago?"). The adapter is
// read-only: Update panics, because a snapshot is immutable by definition.
type Frozen struct {
	csr *graph.CSR
}

var _ ds.Graph = (*Frozen)(nil)

// Freeze wraps a CSR snapshot.
func Freeze(c *graph.CSR) *Frozen { return &Frozen{csr: c} }

// Update implements ds.Graph by refusing: snapshots are immutable.
func (f *Frozen) Update(graph.Batch) {
	panic("snapshot: a frozen snapshot cannot be updated")
}

// NumNodes implements ds.Graph.
func (f *Frozen) NumNodes() int { return f.csr.NumNodes() }

// NumEdges implements ds.Graph.
func (f *Frozen) NumEdges() int { return f.csr.NumEdges() }

// OutDegree implements ds.Graph.
func (f *Frozen) OutDegree(v graph.NodeID) int {
	if int(v) >= f.csr.NumNodes() {
		return 0
	}
	return f.csr.OutDegree(v)
}

// InDegree implements ds.Graph.
func (f *Frozen) InDegree(v graph.NodeID) int {
	if int(v) >= f.csr.NumNodes() {
		return 0
	}
	return f.csr.InDegree(v)
}

// OutNeigh implements ds.Graph.
func (f *Frozen) OutNeigh(v graph.NodeID, buf []graph.Neighbor) []graph.Neighbor {
	if int(v) >= f.csr.NumNodes() {
		return buf
	}
	return append(buf, f.csr.Out(v)...)
}

// InNeigh implements ds.Graph.
func (f *Frozen) InNeigh(v graph.NodeID, buf []graph.Neighbor) []graph.Neighbor {
	if int(v) >= f.csr.NumNodes() {
		return buf
	}
	return append(buf, f.csr.In(v)...)
}

// Directed implements ds.Graph. The CSR always stores explicit directed
// records (undirected inputs were mirrored at ingest), so the snapshot
// reads as a directed view with symmetric edges.
func (f *Frozen) Directed() bool { return true }

// FlatCSR implements ds.FlatView: a frozen snapshot already is flat, so
// the compute kernels iterate its arrays directly — the trivial case of
// the compute-view layer, with no refresh to maintain.
func (f *Frozen) FlatCSR() *graph.CSR { return f.csr }

var _ ds.FlatView = (*Frozen)(nil)
