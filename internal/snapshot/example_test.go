package snapshot_test

import (
	"fmt"

	"sagabench/internal/compute"
	_ "sagabench/internal/ds/all"
	"sagabench/internal/graph"
	"sagabench/internal/snapshot"
)

// ExampleStore records a stream and reruns an algorithm on a historical
// snapshot.
func ExampleStore() {
	store := snapshot.New(snapshot.Config{Directed: true, Every: 2})
	store.Observe(graph.Batch{{Src: 0, Dst: 1, Weight: 1}}, nil)
	store.Observe(graph.Batch{{Src: 1, Dst: 2, Weight: 1}}, nil)

	// How far did vertex 2 sit from the source before batch 1 landed?
	past, err := store.At(0)
	if err != nil {
		panic(err)
	}
	bfs := compute.MustNewEngine("bfs", compute.FS, compute.Options{})
	bfs.PerformAlg(snapshot.Freeze(past), nil)
	fmt.Println(len(bfs.Values()), "vertices existed; depth of 1 was", bfs.Values()[1])
	// Output: 2 vertices existed; depth of 1 was 1
}
