// Package snapshot implements the multi-snapshot model the paper slates
// for a future SAGA-Bench version (Section II, footnote 1; in the spirit
// of Chronos and LLAMA's multiversioned arrays): alongside the latest
// graph, the system can materialize the topology as of any past batch for
// temporal analytics ("how did this community look three batches ago?").
//
// The store records every batch's insertions and deletions and writes a
// full edge-list checkpoint every Every batches. Reconstructing batch i
// replays the deltas after the nearest checkpoint at or before i and
// freezes the result as a CSR — the classic checkpoint-plus-log tradeoff
// between snapshot-query latency and memory.
package snapshot

import (
	"fmt"

	"sagabench/internal/graph"
)

// Config tunes the store.
type Config struct {
	// Directed declares the stream's directedness (undirected streams
	// snapshot both orientations, like the live structures).
	Directed bool
	// Every is the checkpoint cadence in batches (default 8).
	Every int
}

// delta is one batch's topology change.
type delta struct {
	adds graph.Batch
	dels graph.Batch
	// numNodes is the vertex-space size after this batch.
	numNodes int
}

// checkpoint is a materialized distinct-edge state.
type checkpoint struct {
	batch    int // state after this batch index
	edges    []graph.Edge
	numNodes int
}

// Store records stream history and serves historical snapshots.
type Store struct {
	cfg    Config
	live   *graph.Oracle
	deltas []delta
	checks []checkpoint
}

// New builds an empty store.
func New(cfg Config) *Store {
	if cfg.Every <= 0 {
		cfg.Every = 8
	}
	return &Store{cfg: cfg, live: graph.NewOracle(cfg.Directed)}
}

// Observe records one processed batch (inserts plus optional deletions).
// Call it once per batch, in stream order — e.g. from core.RunConfig's
// OnBatch hook.
func (s *Store) Observe(adds, dels graph.Batch) {
	s.live.Update(adds)
	s.live.Delete(dels)
	d := delta{
		adds:     append(graph.Batch(nil), adds...),
		dels:     append(graph.Batch(nil), dels...),
		numNodes: s.live.NumNodes(),
	}
	s.deltas = append(s.deltas, d)
	idx := len(s.deltas) - 1
	if idx%s.cfg.Every == 0 {
		s.checks = append(s.checks, checkpoint{
			batch:    idx,
			edges:    s.live.Edges(),
			numNodes: s.live.NumNodes(),
		})
	}
}

// Batches reports how many batches have been observed.
func (s *Store) Batches() int { return len(s.deltas) }

// Checkpoints reports how many full checkpoints exist (for memory
// accounting and tests).
func (s *Store) Checkpoints() int { return len(s.checks) }

// Latest returns the current topology as a CSR snapshot.
func (s *Store) Latest() *graph.CSR {
	return graph.BuildCSR(s.live.NumNodes(), s.live.Edges())
}

// At materializes the topology as of batch index i (0-based: the state
// after batch i was ingested).
func (s *Store) At(i int) (*graph.CSR, error) {
	if i < 0 || i >= len(s.deltas) {
		return nil, fmt.Errorf("snapshot: batch %d outside observed range [0,%d)", i, len(s.deltas))
	}
	// Nearest checkpoint at or before i.
	var base *checkpoint
	for c := range s.checks {
		if s.checks[c].batch <= i {
			base = &s.checks[c]
		} else {
			break
		}
	}
	rebuilt := graph.NewOracle(s.cfg.Directed)
	start := 0
	if base != nil {
		// Checkpoint edges are the distinct directed records of the
		// state (both orientations already present for undirected
		// graphs; re-mirroring on replay is idempotent).
		rebuilt.Update(graph.Batch(base.edges))
		start = base.batch + 1
	}
	for b := start; b <= i; b++ {
		rebuilt.Update(s.deltas[b].adds)
		rebuilt.Delete(s.deltas[b].dels)
	}
	n := s.deltas[i].numNodes
	if rn := rebuilt.NumNodes(); rn > n {
		n = rn
	}
	return graph.BuildCSR(n, rebuilt.Edges()), nil
}
