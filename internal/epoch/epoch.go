// Package epoch implements the snapshot-publication protocol behind
// SAGA-Bench's non-blocking queries: after each update phase the writer
// publishes an immutable CSR snapshot of the graph (plus the algorithm's
// property vector) behind an atomically swapped epoch pointer; readers pin
// the latest epoch with a refcount, read without any lock, and release.
//
// Progress guarantees (the vocabulary of the wait-free concurrent-graph
// line of work — Peri et al.):
//
//   - Readers never block the writer: Pin/Release are a handful of atomic
//     operations; no reader-side mutex exists for the writer to wait on.
//     A slow or stuck reader only delays buffer reuse, never publication.
//   - The writer never frees (or reuses) memory under a reader: the
//     double-buffered mirror arrays of a superseded snapshot are reused
//     only after its refcount has drained (ReclaimSpare); if readers still
//     hold it, the writer abandons those buffers to the garbage collector
//     and allocates fresh ones — retirement is deferred, not blocking.
//   - Readers are lock-free: Pin retries only when a publication lands
//     between its load and its validation, which bounds retries by writer
//     progress, not by other readers.
//
// The package is deliberately small and dependency-free (graph only): the
// core pipeline wires it into batch processing, and the crosscheck
// harness drives it directly for the read-during-update differential.
package epoch

import (
	"fmt"
	"math"
	"sync/atomic"
	"time"

	"sagabench/internal/graph"
)

// Snapshot is one published epoch: an immutable CSR of the graph as of
// one batch boundary, plus the algorithm's property vector at that batch.
// All exported fields are read-only after Publish; the arrays must never
// be mutated by readers or re-published.
//
// saga:frozen
type Snapshot struct {
	// Epoch is the publication sequence number (1-based; assigned by
	// Publish).
	Epoch uint64
	// Batch is the 0-based index of the batch whose application this
	// snapshot reflects.
	Batch int
	// Wall is the publication wall time, stamped by the caller (the
	// deterministic crosscheck harness leaves it zero).
	Wall time.Time
	// CSR is the adjacency snapshot. For undirected graphs the in arrays
	// alias the out arrays.
	CSR graph.CSR
	// Values is the algorithm's vertex property vector at this batch
	// (may be empty when the publisher runs no compute phase).
	Values []float64
	// Directed reports the stream's directedness.
	Directed bool

	// refs counts pinned readers. It can only grow while the snapshot is
	// the latest epoch; once superseded it drains monotonically, which is
	// what makes ReclaimSpare's refs==0 check stable.
	refs atomic.Int64
}

// NumNodes reports the snapshot's vertex count.
func (s *Snapshot) NumNodes() int { return len(s.CSR.OutIndex) - 1 }

// NumEdges reports the snapshot's directed edge count.
func (s *Snapshot) NumEdges() int { return len(s.CSR.OutAdj) }

// OutDegree reports v's out-degree (0 beyond the vertex space).
func (s *Snapshot) OutDegree(v graph.NodeID) int {
	if int(v) >= s.NumNodes() {
		return 0
	}
	return s.CSR.OutDegree(v)
}

// InDegree reports v's in-degree (0 beyond the vertex space).
func (s *Snapshot) InDegree(v graph.NodeID) int {
	if int(v) >= s.NumNodes() {
		return 0
	}
	return s.CSR.InDegree(v)
}

// Out returns v's out-adjacency run (nil beyond the vertex space). The
// run aliases the snapshot and must not be mutated or held past Release.
func (s *Snapshot) Out(v graph.NodeID) []graph.Neighbor {
	if int(v) >= s.NumNodes() {
		return nil
	}
	return s.CSR.Out(v)
}

// In returns v's in-adjacency run (nil beyond the vertex space).
func (s *Snapshot) In(v graph.NodeID) []graph.Neighbor {
	if int(v) >= s.NumNodes() {
		return nil
	}
	return s.CSR.In(v)
}

// HasEdge scans v's out-run for dst, returning the stored weight.
func (s *Snapshot) HasEdge(src, dst graph.NodeID) (graph.Weight, bool) {
	for _, nb := range s.Out(src) {
		if nb.ID == dst {
			return nb.Weight, true
		}
	}
	return 0, false
}

// Value returns v's algorithm property value at this epoch.
func (s *Snapshot) Value(v graph.NodeID) (float64, bool) {
	if int(v) >= len(s.Values) {
		return 0, false
	}
	return s.Values[v], true
}

// CheckConsistent verifies the snapshot's structural invariants: index
// arrays that start at 0, are monotone, and cover the adjacency arrays
// exactly; neighbor IDs inside the vertex space; a property vector sized
// to the vertex space (or absent). A torn or scribbled publication breaks
// at least one of these. O(V+E) — meant for tests and the differential
// harness, not the query hot path.
func (s *Snapshot) CheckConsistent() error {
	n := s.NumNodes()
	if n < 0 {
		return fmt.Errorf("epoch %d: empty out index", s.Epoch)
	}
	if err := checkDir("out", n, s.CSR.OutIndex, s.CSR.OutAdj); err != nil {
		return fmt.Errorf("epoch %d: %w", s.Epoch, err)
	}
	if len(s.CSR.InIndex) > 0 {
		if len(s.CSR.InIndex) != n+1 {
			return fmt.Errorf("epoch %d: in index covers %d vertices, out index %d", s.Epoch, len(s.CSR.InIndex)-1, n)
		}
		if err := checkDir("in", n, s.CSR.InIndex, s.CSR.InAdj); err != nil {
			return fmt.Errorf("epoch %d: %w", s.Epoch, err)
		}
		if len(s.CSR.InAdj) != len(s.CSR.OutAdj) {
			return fmt.Errorf("epoch %d: %d in records vs %d out records", s.Epoch, len(s.CSR.InAdj), len(s.CSR.OutAdj))
		}
	}
	if len(s.Values) != 0 && len(s.Values) != n {
		return fmt.Errorf("epoch %d: %d property values for %d vertices", s.Epoch, len(s.Values), n)
	}
	return nil
}

func checkDir(dir string, n int, index []int64, adj []graph.Neighbor) error {
	if index[0] != 0 {
		return fmt.Errorf("%s index starts at %d, want 0", dir, index[0])
	}
	for v := 0; v < n; v++ {
		if index[v+1] < index[v] {
			return fmt.Errorf("%s index decreases at vertex %d (%d -> %d)", dir, v, index[v], index[v+1])
		}
	}
	if int(index[n]) != len(adj) {
		return fmt.Errorf("%s index covers %d records, adjacency holds %d", dir, index[n], len(adj))
	}
	for i, nb := range adj {
		if int(nb.ID) >= n {
			return fmt.Errorf("%s record %d names vertex %d outside space of %d", dir, i, nb.ID, n)
		}
	}
	return nil
}

// Fingerprint hashes the snapshot's topology and values (FNV-1a over the
// index, adjacency, and property arrays). A pinned epoch's fingerprint
// must never change — the race battery computes it at pin time and again
// after the writer has advanced, so any scribble on a held snapshot is
// caught even if the structural invariants still hold.
func (s *Snapshot) Fingerprint() uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	mix := func(v uint64) {
		for i := 0; i < 8; i++ {
			h ^= (v >> (8 * i)) & 0xff
			h *= prime64
		}
	}
	for _, x := range s.CSR.OutIndex {
		mix(uint64(x))
	}
	for _, nb := range s.CSR.OutAdj {
		mix(uint64(nb.ID))
		mix(uint64(math.Float32bits(float32(nb.Weight))))
	}
	// The undirected mirror aliases in onto out; hashing the alias twice
	// is harmless and keeps the code branch-free for the directed case.
	for _, x := range s.CSR.InIndex {
		mix(uint64(x))
	}
	for _, nb := range s.CSR.InAdj {
		mix(uint64(nb.ID))
	}
	for _, v := range s.Values {
		mix(math.Float64bits(v))
	}
	return h
}

// Stats is a monotone snapshot of the manager's counters.
type Stats struct {
	// Published counts snapshots published.
	Published uint64
	// Reclaimed counts superseded snapshots whose buffers drained and
	// were handed back to the writer's double buffer (the zero-reader
	// fast path).
	Reclaimed uint64
	// Dropped counts superseded snapshots that were still pinned when
	// the writer needed their buffers; their arrays were abandoned to the
	// GC and the writer allocated fresh ones.
	Dropped uint64
	// Pins is the current number of outstanding pinned handles.
	Pins int64
}

// Manager publishes snapshots and coordinates reader pins with writer
// buffer reuse. Publish/ReclaimSpare/ForgetSpare/Close are writer-side:
// they must be called from one goroutine (the pipeline's batch loop).
// Pin/Release are safe from any number of concurrent readers.
type Manager struct {
	latest atomic.Pointer[Snapshot]

	pins      atomic.Int64
	published atomic.Uint64
	reclaimed atomic.Uint64
	dropped   atomic.Uint64

	// reuse declares that published CSR arrays come from a double
	// buffer the writer wants back (the compute-view mirror). Without it
	// every publication carries fresh arrays and spare tracking is off.
	reuse bool
	// spareOwner is the snapshot whose arrays currently sit in the
	// writer's spare buffer — the epoch superseded by the latest publish.
	// Writer-side only.
	spareOwner *Snapshot
}

// NewManager builds a manager. reuseBuffers declares that the writer
// double-buffers the published arrays and will ask ReclaimSpare before
// each rebuild; publishers of freshly allocated arrays pass false.
func NewManager(reuseBuffers bool) *Manager {
	return &Manager{reuse: reuseBuffers}
}

// Publish makes s the latest epoch. The previously latest snapshot is
// superseded: no new pins can land on it, so its refcount only drains
// from here on. Returns the assigned epoch number.
func (m *Manager) Publish(s *Snapshot) uint64 {
	s.Epoch = m.published.Add(1) // saga:allow frozenwrite -- the epoch number is stamped exactly once, before the swap makes s visible to readers
	prev := m.latest.Swap(s)
	if m.reuse {
		// prev's arrays are now the writer's spare buffer (the double
		// buffer swapped during the rebuild that produced s); remember
		// whose they are so ReclaimSpare can gate the next rebuild.
		m.spareOwner = prev
	}
	return s.Epoch
}

// ReclaimSpare is the writer's pre-rebuild gate: it reports whether the
// spare buffers (owned by the snapshot superseded two publications ago)
// may be scribbled. A false return means the owner has drained — reuse
// freely. A true return means readers still pin the owner: the caller
// MUST abandon the spare buffers (ds.ComputeView.DropSpares) so the next
// rebuild allocates fresh arrays; the pinned snapshot stays intact and is
// garbage-collected when its readers release.
func (m *Manager) ReclaimSpare() (mustDrop bool) {
	owner := m.spareOwner
	if owner == nil {
		return false
	}
	m.spareOwner = nil
	// owner is superseded (Publish swapped it out), so refs can only
	// drain: a reader that loads it stale will fail Pin's validation and
	// never read through it. Observing 0 here is therefore stable.
	if owner.refs.Load() == 0 {
		m.reclaimed.Add(1)
		return false
	}
	m.dropped.Add(1)
	return true
}

// ForgetSpare drops spare tracking without reclaiming — for writers that
// discard their double buffer wholesale (durable recovery rebuilds the
// mirror from scratch).
func (m *Manager) ForgetSpare() { m.spareOwner = nil }

// Pin acquires the latest snapshot for reading, or nil when nothing has
// been published (or the manager is closed). The caller must Release it.
//
// The load→increment→validate dance closes the race with a concurrent
// publication: if the snapshot was superseded between the load and the
// increment, the validation load (sequentially consistent, so ordered
// after the publisher's swap) observes the newer epoch and the pin is
// retried — the transient refcount bump on the superseded snapshot is
// harmless because this reader never dereferences it.
//
// saga:pin
func (m *Manager) Pin() *Snapshot {
	for {
		s := m.latest.Load()
		if s == nil {
			return nil
		}
		s.refs.Add(1)
		if m.latest.Load() == s {
			m.pins.Add(1)
			return s
		}
		s.refs.Add(-1)
	}
}

// Release returns a pinned snapshot. Must be called exactly once per
// successful Pin.
//
// saga:pinrelease
func (m *Manager) Release(s *Snapshot) {
	if s == nil {
		return
	}
	s.refs.Add(-1)
	m.pins.Add(-1)
}

// LatestEpoch reports the epoch number of the latest publication (0
// before the first). Readers use it to measure the staleness of a pinned
// handle in batches.
func (m *Manager) LatestEpoch() uint64 {
	if s := m.latest.Load(); s != nil {
		return s.Epoch
	}
	return m.published.Load()
}

// Close stops publication hand-out: subsequent Pins return nil. Handles
// already pinned stay valid — their snapshots are immutable and outlive
// the manager — so a late-releasing reader never observes freed memory.
func (m *Manager) Close() {
	m.latest.Store(nil)
	m.spareOwner = nil
}

// Stats reads the manager's counters.
func (m *Manager) Stats() Stats {
	return Stats{
		Published: m.published.Load(),
		Reclaimed: m.reclaimed.Load(),
		Dropped:   m.dropped.Load(),
		Pins:      m.pins.Load(),
	}
}
