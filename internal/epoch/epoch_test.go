package epoch

import (
	"fmt"
	"strings"
	"sync"
	"testing"

	"sagabench/internal/graph"
)

// snap builds a minimal well-formed snapshot over a 4-vertex triangle
// plus an isolated vertex, with a property vector.
func snap(batch int) *Snapshot {
	csr := graph.BuildCSR(4, []graph.Edge{
		{Src: 0, Dst: 1, Weight: 1},
		{Src: 1, Dst: 2, Weight: 2},
		{Src: 2, Dst: 0, Weight: 3},
	})
	return &Snapshot{
		Batch:    batch,
		CSR:      *csr,
		Values:   []float64{0, 1, 2, 3},
		Directed: true,
	}
}

func TestSnapshotAccessors(t *testing.T) {
	s := snap(0)
	if got := s.NumNodes(); got != 4 {
		t.Fatalf("NumNodes = %d, want 4", got)
	}
	if got := s.NumEdges(); got != 3 {
		t.Fatalf("NumEdges = %d, want 3", got)
	}
	if got := s.OutDegree(0); got != 1 {
		t.Fatalf("OutDegree(0) = %d, want 1", got)
	}
	if got := s.InDegree(0); got != 1 {
		t.Fatalf("InDegree(0) = %d, want 1", got)
	}
	if got := s.OutDegree(3); got != 0 {
		t.Fatalf("OutDegree(3) = %d, want 0 (isolated)", got)
	}
	// Out-of-range vertices answer zero/nil, never panic.
	if got := s.OutDegree(99); got != 0 {
		t.Fatalf("OutDegree(99) = %d, want 0", got)
	}
	if run := s.Out(99); run != nil {
		t.Fatalf("Out(99) = %v, want nil", run)
	}
	if run := s.In(99); run != nil {
		t.Fatalf("In(99) = %v, want nil", run)
	}
	if w, ok := s.HasEdge(0, 1); !ok || w != 1 {
		t.Fatalf("HasEdge(0,1) = %v,%v, want 1,true", w, ok)
	}
	if _, ok := s.HasEdge(0, 2); ok {
		t.Fatal("HasEdge(0,2) = true, want false")
	}
	if v, ok := s.Value(2); !ok || v != 2 {
		t.Fatalf("Value(2) = %v,%v, want 2,true", v, ok)
	}
	if _, ok := s.Value(99); ok {
		t.Fatal("Value(99) = ok, want miss")
	}
}

func TestCheckConsistentNegative(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*Snapshot)
		want   string
	}{
		{"nonzero index start", func(s *Snapshot) { s.CSR.OutIndex[0] = 1 }, "starts at"},
		{"decreasing index", func(s *Snapshot) { s.CSR.OutIndex[2] = 0 }, "decreases"},
		{"index adjacency mismatch", func(s *Snapshot) { s.CSR.OutAdj = s.CSR.OutAdj[:2] }, "covers"},
		{"neighbor outside space", func(s *Snapshot) { s.CSR.OutAdj[0].ID = 99 }, "outside space"},
		{"in/out record mismatch", func(s *Snapshot) {
			s.CSR.InAdj = s.CSR.InAdj[:2]
			s.CSR.InIndex[3], s.CSR.InIndex[4] = 2, 2
		}, "records"},
		{"in index wrong span", func(s *Snapshot) { s.CSR.InIndex = s.CSR.InIndex[:4] }, "in index covers"},
		{"values wrong length", func(s *Snapshot) { s.Values = s.Values[:2] }, "property values"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s := snap(0)
			if err := s.CheckConsistent(); err != nil {
				t.Fatalf("baseline inconsistent: %v", err)
			}
			tc.mutate(s)
			err := s.CheckConsistent()
			if err == nil {
				t.Fatal("mutated snapshot passes CheckConsistent")
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

func TestFingerprintSensitivity(t *testing.T) {
	base := snap(0).Fingerprint()
	if again := snap(0).Fingerprint(); again != base {
		t.Fatalf("fingerprint not deterministic: %#x vs %#x", base, again)
	}
	mutations := []struct {
		name   string
		mutate func(*Snapshot)
	}{
		{"neighbor id", func(s *Snapshot) { s.CSR.OutAdj[0].ID = 2 }},
		{"edge weight", func(s *Snapshot) { s.CSR.OutAdj[0].Weight = 7 }},
		{"index shift", func(s *Snapshot) { s.CSR.OutIndex[1] = 0 }},
		{"property value", func(s *Snapshot) { s.Values[3] = -1 }},
		{"in record", func(s *Snapshot) { s.CSR.InAdj[0].ID = 3 }},
	}
	for _, m := range mutations {
		s := snap(0)
		m.mutate(s)
		if s.Fingerprint() == base {
			t.Errorf("%s: fingerprint unchanged after mutation", m.name)
		}
	}
}

func TestPublishPinRelease(t *testing.T) {
	m := NewManager(false)
	if s := m.Pin(); s != nil {
		t.Fatal("Pin before first publish returned a snapshot")
	}
	if e := m.LatestEpoch(); e != 0 {
		t.Fatalf("LatestEpoch before publish = %d, want 0", e)
	}

	s1 := snap(0)
	if e := m.Publish(s1); e != 1 {
		t.Fatalf("first publish epoch = %d, want 1", e)
	}
	h := m.Pin()
	if h != s1 {
		t.Fatal("Pin did not return the latest snapshot")
	}
	if st := m.Stats(); st.Pins != 1 || st.Published != 1 {
		t.Fatalf("stats after pin = %+v", st)
	}

	s2 := snap(1)
	if e := m.Publish(s2); e != 2 {
		t.Fatalf("second publish epoch = %d, want 2", e)
	}
	// The superseded snapshot stays readable through the old handle.
	if h.Epoch != 1 || h.NumNodes() != 4 {
		t.Fatal("pinned superseded snapshot corrupted")
	}
	if got := m.Pin(); got != s2 {
		t.Fatal("Pin after second publish did not return s2")
	}
	m.Release(s2)
	m.Release(h)
	if st := m.Stats(); st.Pins != 0 {
		t.Fatalf("pins after release = %d, want 0", st.Pins)
	}
	if e := m.LatestEpoch(); e != 2 {
		t.Fatalf("LatestEpoch = %d, want 2", e)
	}
}

func TestReleaseNilIsNoop(t *testing.T) {
	m := NewManager(false)
	m.Release(nil)
	if st := m.Stats(); st.Pins != 0 {
		t.Fatalf("pins after nil release = %d", st.Pins)
	}
}

func TestReclaimSpareZeroReaderFastPath(t *testing.T) {
	m := NewManager(true)
	m.Publish(snap(0))
	// No spare yet: the first publication supersedes nothing.
	if m.ReclaimSpare() {
		t.Fatal("ReclaimSpare with no spare owner asked for a drop")
	}
	m.Publish(snap(1))
	// s1 is the spare owner and nobody pinned it: reuse.
	if m.ReclaimSpare() {
		t.Fatal("ReclaimSpare with drained owner asked for a drop")
	}
	st := m.Stats()
	if st.Reclaimed != 1 || st.Dropped != 0 {
		t.Fatalf("stats = %+v, want 1 reclaimed, 0 dropped", st)
	}
	// The gate is consumed: asking again without a publish is a no-op.
	if m.ReclaimSpare() {
		t.Fatal("second ReclaimSpare asked for a drop")
	}
	if st := m.Stats(); st.Reclaimed != 1 {
		t.Fatalf("second ReclaimSpare recounted: %+v", st)
	}
}

func TestReclaimSparePinnedOwnerMustDrop(t *testing.T) {
	m := NewManager(true)
	s1 := snap(0)
	m.Publish(s1)
	h := m.Pin()
	m.Publish(snap(1))
	// s1 is the spare owner and still pinned: the writer must abandon
	// the buffers.
	if !m.ReclaimSpare() {
		t.Fatal("ReclaimSpare with pinned owner allowed reuse")
	}
	st := m.Stats()
	if st.Dropped != 1 || st.Reclaimed != 0 {
		t.Fatalf("stats = %+v, want 1 dropped, 0 reclaimed", st)
	}
	// The late release happens after the drop decision: the snapshot is
	// still intact.
	if err := h.CheckConsistent(); err != nil {
		t.Fatalf("dropped-but-pinned snapshot inconsistent: %v", err)
	}
	m.Release(h)
	if st := m.Stats(); st.Pins != 0 {
		t.Fatalf("pins = %d after late release", st.Pins)
	}
}

func TestForgetSpare(t *testing.T) {
	m := NewManager(true)
	m.Publish(snap(0))
	m.Publish(snap(1))
	m.ForgetSpare()
	if m.ReclaimSpare() {
		t.Fatal("ReclaimSpare after ForgetSpare asked for a drop")
	}
	if st := m.Stats(); st.Reclaimed != 0 && st.Dropped != 0 {
		t.Fatalf("forgotten spare still counted: %+v", st)
	}
}

func TestNoReuseManagerTracksNoSpare(t *testing.T) {
	m := NewManager(false)
	m.Publish(snap(0))
	m.Publish(snap(1))
	if m.ReclaimSpare() {
		t.Fatal("non-reusing manager asked for a drop")
	}
	if st := m.Stats(); st.Reclaimed != 0 || st.Dropped != 0 {
		t.Fatalf("non-reusing manager counted buffers: %+v", st)
	}
}

func TestCloseStopsHandout(t *testing.T) {
	m := NewManager(false)
	m.Publish(snap(0))
	h := m.Pin()
	m.Close()
	if s := m.Pin(); s != nil {
		t.Fatal("Pin after Close returned a snapshot")
	}
	// The outstanding handle stays readable after Close.
	if err := h.CheckConsistent(); err != nil {
		t.Fatalf("pinned snapshot broken by Close: %v", err)
	}
	if _, ok := h.HasEdge(0, 1); !ok {
		t.Fatal("pinned snapshot lost edges after Close")
	}
	m.Release(h)
	// LatestEpoch falls back to the publication counter when latest is nil.
	if e := m.LatestEpoch(); e != 1 {
		t.Fatalf("LatestEpoch after Close = %d, want 1", e)
	}
}

// TestPinValidationUnderChurn hammers Pin/Release from many goroutines
// while the writer publishes continuously, asserting handles are always
// well-formed and refcounts drain to zero. Run with -race this is the
// package-local half of the concurrency battery.
func TestPinValidationUnderChurn(t *testing.T) {
	m := NewManager(true)
	const (
		readers  = 8
		pinsEach = 400
		epochs   = 200
	)
	var wg sync.WaitGroup
	errs := make(chan error, readers)
	for i := 0; i < readers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for n := 0; n < pinsEach; n++ {
				h := m.Pin()
				if h == nil {
					continue
				}
				if h.NumNodes() != 4 {
					errs <- fmt.Errorf("pinned snapshot with %d nodes", h.NumNodes())
					m.Release(h)
					return
				}
				if h.Epoch == 0 {
					errs <- fmt.Errorf("pinned snapshot without epoch")
					m.Release(h)
					return
				}
				m.Release(h)
			}
		}()
	}
	for e := 0; e < epochs; e++ {
		m.Publish(snap(e))
		m.ReclaimSpare()
	}
	wg.Wait()
	select {
	case err := <-errs:
		t.Fatal(err)
	default:
	}
	if st := m.Stats(); st.Pins != 0 {
		t.Fatalf("refcounts did not drain: %d pins outstanding", st.Pins)
	}
}
