// Package elio reads and writes edge-list streams in the plain text
// format SNAP distributes ("src dst" or "src dst weight" per line, '#'
// comments), so real datasets can be fed through the pipeline exactly
// like the synthetic generators. Unweighted lines get weight 1, matching
// how the unweighted SNAP graphs are consumed by weighted algorithms.
package elio

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"sagabench/internal/graph"
)

// Read parses an edge list. Blank lines and lines starting with '#' or
// '%' are skipped. Fields may be separated by any run of spaces or tabs.
func Read(r io.Reader) ([]graph.Edge, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<20)
	var edges []graph.Edge
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || line[0] == '#' || line[0] == '%' {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 2 || len(fields) > 3 {
			return nil, fmt.Errorf("elio: line %d: want 2 or 3 fields, got %d", lineNo, len(fields))
		}
		src, err := strconv.ParseUint(fields[0], 10, 32)
		if err != nil {
			return nil, fmt.Errorf("elio: line %d: source: %w", lineNo, err)
		}
		dst, err := strconv.ParseUint(fields[1], 10, 32)
		if err != nil {
			return nil, fmt.Errorf("elio: line %d: destination: %w", lineNo, err)
		}
		w := 1.0
		if len(fields) == 3 {
			w, err = strconv.ParseFloat(fields[2], 32)
			if err != nil {
				return nil, fmt.Errorf("elio: line %d: weight: %w", lineNo, err)
			}
			if w <= 0 {
				return nil, fmt.Errorf("elio: line %d: weight %v must be positive", lineNo, w)
			}
		}
		edges = append(edges, graph.Edge{
			Src:    graph.NodeID(src),
			Dst:    graph.NodeID(dst),
			Weight: graph.Weight(w),
		})
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("elio: %w", err)
	}
	return edges, nil
}

// Write emits edges as "src dst weight" lines.
func Write(w io.Writer, edges []graph.Edge) error {
	bw := bufio.NewWriter(w)
	for _, e := range edges {
		if _, err := fmt.Fprintf(bw, "%d %d %g\n", e.Src, e.Dst, e.Weight); err != nil {
			return fmt.Errorf("elio: %w", err)
		}
	}
	if err := bw.Flush(); err != nil {
		return fmt.Errorf("elio: %w", err)
	}
	return nil
}
