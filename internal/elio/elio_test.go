package elio

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"sagabench/internal/graph"
)

func TestReadBasic(t *testing.T) {
	in := `# SNAP-style comment
% matrix-market-style comment

0 1
1 2 3.5
2	0	7
`
	edges, err := Read(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	want := []graph.Edge{
		{Src: 0, Dst: 1, Weight: 1},
		{Src: 1, Dst: 2, Weight: 3.5},
		{Src: 2, Dst: 0, Weight: 7},
	}
	if len(edges) != len(want) {
		t.Fatalf("%d edges want %d", len(edges), len(want))
	}
	for i := range want {
		if edges[i] != want[i] {
			t.Errorf("edge %d: %v want %v", i, edges[i], want[i])
		}
	}
}

func TestReadErrors(t *testing.T) {
	cases := []string{
		"0\n",              // too few fields
		"0 1 2 3\n",        // too many fields
		"a 1\n",            // bad source
		"1 b\n",            // bad destination
		"1 2 x\n",          // bad weight
		"1 2 -4\n",         // non-positive weight
		"1 2 0\n",          // zero weight
		"-1 2\n",           // negative ID
		"999999999999 2\n", // overflow uint32
	}
	for _, c := range cases {
		if _, err := Read(strings.NewReader(c)); err == nil {
			t.Errorf("input %q: expected error", c)
		}
	}
}

func TestRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	edges := make([]graph.Edge, 500)
	for i := range edges {
		edges[i] = graph.Edge{
			Src:    graph.NodeID(rng.Uint32()),
			Dst:    graph.NodeID(rng.Uint32()),
			Weight: graph.Weight(rng.Intn(100) + 1),
		}
	}
	var buf bytes.Buffer
	if err := Write(&buf, edges); err != nil {
		t.Fatal(err)
	}
	back, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(edges) {
		t.Fatalf("%d edges want %d", len(back), len(edges))
	}
	for i := range edges {
		if back[i] != edges[i] {
			t.Fatalf("edge %d: %v want %v", i, back[i], edges[i])
		}
	}
}

// Property: Write then Read is the identity for integral-weight edges.
func TestRoundTripProperty(t *testing.T) {
	f := func(raw []uint32) bool {
		var edges []graph.Edge
		for i := 0; i+2 < len(raw); i += 3 {
			edges = append(edges, graph.Edge{
				Src:    graph.NodeID(raw[i]),
				Dst:    graph.NodeID(raw[i+1]),
				Weight: graph.Weight(raw[i+2]%1000 + 1),
			})
		}
		var buf bytes.Buffer
		if err := Write(&buf, edges); err != nil {
			return false
		}
		back, err := Read(&buf)
		if err != nil {
			return false
		}
		if len(back) != len(edges) {
			return false
		}
		for i := range edges {
			if back[i] != edges[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestReadEmpty(t *testing.T) {
	edges, err := Read(strings.NewReader("# only comments\n\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(edges) != 0 {
		t.Fatalf("expected no edges, got %d", len(edges))
	}
}
