package elio

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzRead checks the parser never panics and that accepted inputs
// round-trip through Write/Read.
func FuzzRead(f *testing.F) {
	f.Add("0 1\n1 2 3\n")
	f.Add("# comment\n5 6 7.25\n")
	f.Add("")
	f.Add("999 999999 0.5")
	f.Add("a b c")
	f.Add("1 2 3 4 5")
	f.Fuzz(func(t *testing.T, input string) {
		edges, err := Read(strings.NewReader(input))
		if err != nil {
			return // rejected input is fine; panics are not
		}
		var buf bytes.Buffer
		if err := Write(&buf, edges); err != nil {
			t.Fatalf("Write of accepted edges failed: %v", err)
		}
		back, err := Read(&buf)
		if err != nil {
			t.Fatalf("re-Read of Write output failed: %v", err)
		}
		if len(back) != len(edges) {
			t.Fatalf("round trip changed edge count %d -> %d", len(edges), len(back))
		}
		for i := range edges {
			if back[i].Src != edges[i].Src || back[i].Dst != edges[i].Dst {
				t.Fatalf("round trip changed edge %d: %v -> %v", i, edges[i], back[i])
			}
		}
	})
}
