// Package crosscheck is the differential fuzz harness: it replays
// deterministic, seed-driven randomized edge streams through every
// registered data structure, compares the full adjacency (both
// directions, with weights) against the sequential graph.Oracle after
// every batch, runs all six algorithms under both compute models on top
// of each snapshot, and checks their property vectors against the
// sequential reference implementations in internal/graph. On a mismatch
// it shrinks the failing stream (drop-batch, then drop-edge) to a
// minimal reproducer that can be written to a replayable repro file
// consumed by `sagafuzz -replay` and by regression tests.
//
// saga:deterministic — the whole point of the harness is bit-identical
// replay from a seed, so wall-clock reads and unseeded or map-ordered
// iteration are forbidden (enforced by sagavet; see internal/analysis).
package crosscheck

import (
	"math/rand"

	"sagabench/internal/graph"
)

// Step is one ingest unit of a crosscheck stream: additions are applied
// first (Update), then deletions (Delete), matching core.MixedBatch.
type Step struct {
	Adds graph.Batch
	Dels graph.Batch
}

// Stream is an ordered sequence of steps replayed from empty state.
type Stream []Step

// NumEdges counts the stream's total add and delete records.
func (s Stream) NumEdges() (adds, dels int) {
	for _, st := range s {
		adds += len(st.Adds)
		dels += len(st.Dels)
	}
	return adds, dels
}

// clone deep-copies the stream so shrinking can mutate candidates freely.
func (s Stream) clone() Stream {
	out := make(Stream, len(s))
	for i, st := range s {
		out[i] = Step{
			Adds: append(graph.Batch(nil), st.Adds...),
			Dels: append(graph.Batch(nil), st.Dels...),
		}
	}
	return out
}

// StreamConfig parameterizes deterministic stream generation. The zero
// value is not useful; fill in Seed/Batches or use the defaults applied
// by withDefaults.
type StreamConfig struct {
	// Seed drives every random choice; identical configs with identical
	// seeds generate identical streams.
	Seed int64
	// Batches is the number of steps (default 20).
	Batches int
	// BatchSize is the nominal edge count per step (default 400).
	BatchSize int
	// NumNodes is the vertex-ID space (default 96; small on purpose so
	// duplicate edges, re-inserts, and hub contention are frequent).
	NumNodes int
	// Directed selects the stream's directedness.
	Directed bool
	// Deletes enables delete records (default: disabled unless set).
	Deletes bool
}

func (c StreamConfig) withDefaults() StreamConfig {
	if c.Batches <= 0 {
		c.Batches = 20
	}
	if c.BatchSize <= 0 {
		c.BatchSize = 400
	}
	if c.NumNodes <= 0 {
		c.NumNodes = 96
	}
	return c
}

// Batch flavors, rotated randomly so each stream mixes the adversarial
// shapes Section V-B of the paper identifies (per-batch degree skew) with
// the shapes that historically break concurrent structures (duplicates,
// re-inserts, empty batches, hot spots).
const (
	flavorUniform   = iota // uniform random endpoints
	flavorHub              // one vertex on most edges (hot spot)
	flavorDupHeavy         // tiny endpoint universe: many same-batch duplicates
	flavorReinsert         // resample live edges with fresh weights
	flavorEmpty            // empty batch (must be a no-op)
	flavorSkewed           // zipf-ish skewed endpoints
	numFlavors
)

// pairWeight derives an edge weight deterministically from the endpoints
// and a per-step salt. Within one step every duplicate of a pair gets the
// same weight — concurrent ingestion applies same-batch duplicates in
// nondeterministic order, so they must agree — while a later step with a
// different salt re-inserts the pair with a fresh weight. The weight is
// symmetric in (src, dst) so undirected mirror ingestion also agrees.
func pairWeight(src, dst graph.NodeID, salt uint32) graph.Weight {
	a, b := uint32(src), uint32(dst)
	if a > b {
		a, b = b, a
	}
	h := (a*2654435761 ^ b*40503 ^ salt*97) % 63
	return graph.Weight(h + 1)
}

// NewStream generates the stream for cfg. Generation is sequential and
// deterministic: it tracks the live edge set (current weights included)
// so deletions carry the weight the edge actually has at delete time —
// KickStarter-style trimming judges value support by the deleted edge's
// weight, so a stale weight would under-invalidate and report a false
// positive against the reference.
func NewStream(cfg StreamConfig) Stream {
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))
	type pair struct{ src, dst graph.NodeID }
	cur := map[pair]graph.Weight{} // live edges with current weights
	var livePairs []pair           // insertion-ordered keys of cur (may repeat)

	stream := make(Stream, 0, cfg.Batches)
	for b := 0; b < cfg.Batches; b++ {
		salt := uint32(b) + uint32(cfg.Seed&0xffff)*31
		flavor := rng.Intn(numFlavors)
		step := Step{}

		drawVertex := func() graph.NodeID {
			return graph.NodeID(rng.Intn(cfg.NumNodes))
		}
		drawSkewed := func() graph.NodeID {
			// Square a uniform draw: low IDs dominate.
			u := rng.Float64()
			return graph.NodeID(int(u * u * float64(cfg.NumNodes)))
		}
		addEdge := func(src, dst graph.NodeID, w graph.Weight) {
			step.Adds = append(step.Adds, graph.Edge{Src: src, Dst: dst, Weight: w})
			p := pair{src, dst}
			if _, ok := cur[p]; !ok {
				livePairs = append(livePairs, p)
			}
			cur[p] = w
			if !cfg.Directed {
				rp := pair{dst, src}
				if _, ok := cur[rp]; !ok {
					livePairs = append(livePairs, rp)
				}
				cur[rp] = w
			}
		}

		switch flavor {
		case flavorEmpty:
			// Roughly half the empty steps carry a nil batch, the other
			// half a zero-length one.
			if rng.Intn(2) == 0 {
				step.Adds = graph.Batch{}
			}
		case flavorHub:
			hub := drawVertex()
			for i := 0; i < cfg.BatchSize; i++ {
				src, dst := hub, drawVertex()
				if rng.Intn(2) == 0 {
					src, dst = dst, hub
				}
				if src == dst {
					dst = graph.NodeID((int(dst) + 1) % cfg.NumNodes)
				}
				addEdge(src, dst, pairWeight(src, dst, salt))
			}
		case flavorDupHeavy:
			// Drawing from ~8 vertices makes same-batch duplicates the
			// common case, hammering unique-ingestion under contention.
			lo := rng.Intn(cfg.NumNodes)
			for i := 0; i < cfg.BatchSize; i++ {
				src := graph.NodeID((lo + rng.Intn(8)) % cfg.NumNodes)
				dst := graph.NodeID((lo + rng.Intn(8)) % cfg.NumNodes)
				addEdge(src, dst, pairWeight(src, dst, salt))
			}
		case flavorReinsert:
			if len(livePairs) == 0 {
				break
			}
			for i := 0; i < cfg.BatchSize; i++ {
				p := livePairs[rng.Intn(len(livePairs))]
				// Fresh salt → fresh weight: the overwrite path.
				addEdge(p.src, p.dst, pairWeight(p.src, p.dst, salt))
			}
		case flavorSkewed:
			for i := 0; i < cfg.BatchSize; i++ {
				src, dst := drawSkewed(), drawSkewed()
				addEdge(src, dst, pairWeight(src, dst, salt))
			}
		default: // flavorUniform
			for i := 0; i < cfg.BatchSize; i++ {
				src, dst := drawVertex(), drawVertex()
				addEdge(src, dst, pairWeight(src, dst, salt))
			}
		}

		if cfg.Deletes && rng.Intn(3) > 0 && len(livePairs) > 0 {
			nDel := rng.Intn(cfg.BatchSize/2 + 1)
			for i := 0; i < nDel; i++ {
				if rng.Intn(5) == 0 {
					// Absent or out-of-range edge: must be a no-op.
					step.Dels = append(step.Dels, graph.Edge{
						Src:    graph.NodeID(rng.Intn(2 * cfg.NumNodes)),
						Dst:    graph.NodeID(cfg.NumNodes + rng.Intn(cfg.NumNodes)),
						Weight: 1,
					})
					continue
				}
				p := livePairs[rng.Intn(len(livePairs))]
				w, ok := cur[p]
				if !ok {
					continue // already deleted this stream
				}
				step.Dels = append(step.Dels, graph.Edge{Src: p.src, Dst: p.dst, Weight: w})
				delete(cur, p)
				if !cfg.Directed {
					delete(cur, pair{p.dst, p.src})
				}
			}
		}
		stream = append(stream, step)
	}
	return stream
}
