package crosscheck

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"sagabench/internal/compute"
	"sagabench/internal/ds"
	"sagabench/internal/graph"
)

// Repro is a self-contained, replayable reproducer: the minimized stream
// plus the configuration needed to re-trigger one specific failure. It
// serializes to a line-oriented text file that `sagafuzz -replay`
// consumes and that regression tests check in under testdata/.
type Repro struct {
	// Directed is the stream's directedness.
	Directed bool
	// Threads is the worker count used when the failure was found.
	Threads int
	// DS is the failing data structure.
	DS string
	// Alg/Model identify the failing engine; an empty Alg means the
	// failure was topological and replay skips the engines entirely.
	Alg   string
	Model compute.Model
	// Source is the root vertex for the source-based algorithms.
	Source graph.NodeID
	// Note is a free-form description (the original failure detail).
	Note string
	// Stream is the minimized failing stream.
	Stream Stream
}

const reproHeader = "sagafuzz repro v1"

// Write serializes the repro.
func (r *Repro) Write(w io.Writer) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintln(bw, reproHeader)
	if r.Note != "" {
		for _, line := range strings.Split(r.Note, "\n") {
			fmt.Fprintf(bw, "# %s\n", line)
		}
	}
	fmt.Fprintf(bw, "directed %v\n", r.Directed)
	fmt.Fprintf(bw, "threads %d\n", r.Threads)
	fmt.Fprintf(bw, "ds %s\n", r.DS)
	if r.Alg != "" {
		fmt.Fprintf(bw, "alg %s\n", r.Alg)
		fmt.Fprintf(bw, "model %s\n", r.Model)
		fmt.Fprintf(bw, "source %d\n", r.Source)
	}
	for _, step := range r.Stream {
		fmt.Fprintln(bw, "batch")
		for _, e := range step.Adds {
			fmt.Fprintf(bw, "add %d %d %g\n", e.Src, e.Dst, e.Weight)
		}
		for _, e := range step.Dels {
			fmt.Fprintf(bw, "del %d %d %g\n", e.Src, e.Dst, e.Weight)
		}
	}
	if err := bw.Flush(); err != nil {
		return fmt.Errorf("crosscheck: %w", err)
	}
	return nil
}

// WriteFile serializes the repro to path.
func (r *Repro) WriteFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := r.Write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// ParseRepro deserializes a repro file.
func ParseRepro(rd io.Reader) (*Repro, error) {
	sc := bufio.NewScanner(rd)
	sc.Buffer(make([]byte, 1<<16), 1<<20)
	if !sc.Scan() {
		return nil, fmt.Errorf("crosscheck: empty repro")
	}
	if strings.TrimSpace(sc.Text()) != reproHeader {
		return nil, fmt.Errorf("crosscheck: bad repro header %q", sc.Text())
	}
	r := &Repro{Model: compute.FS}
	lineNo := 1
	inStream := false
	var noteLines []string
	parseEdge := func(fields []string) (graph.Edge, error) {
		var e graph.Edge
		if len(fields) != 4 {
			return e, fmt.Errorf("want 4 fields, got %d", len(fields))
		}
		src, err := strconv.ParseUint(fields[1], 10, 32)
		if err != nil {
			return e, fmt.Errorf("source: %w", err)
		}
		dst, err := strconv.ParseUint(fields[2], 10, 32)
		if err != nil {
			return e, fmt.Errorf("destination: %w", err)
		}
		w, err := strconv.ParseFloat(fields[3], 32)
		if err != nil {
			return e, fmt.Errorf("weight: %w", err)
		}
		return graph.Edge{Src: graph.NodeID(src), Dst: graph.NodeID(dst), Weight: graph.Weight(w)}, nil
	}
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			// Comment lines are the serialized Note; restore it so a
			// parsed repro keeps its provenance.
			noteLines = append(noteLines, strings.TrimSpace(strings.TrimPrefix(line, "#")))
			continue
		}
		fields := strings.Fields(line)
		key := fields[0]
		if inStream && key != "batch" && key != "add" && key != "del" {
			return nil, fmt.Errorf("crosscheck: line %d: directive %q after first batch", lineNo, key)
		}
		var err error
		switch key {
		case "directed":
			if len(fields) != 2 {
				return nil, fmt.Errorf("crosscheck: line %d: malformed directed", lineNo)
			}
			r.Directed, err = strconv.ParseBool(fields[1])
		case "threads":
			if len(fields) != 2 {
				return nil, fmt.Errorf("crosscheck: line %d: malformed threads", lineNo)
			}
			r.Threads, err = strconv.Atoi(fields[1])
		case "ds":
			if len(fields) != 2 {
				return nil, fmt.Errorf("crosscheck: line %d: malformed ds", lineNo)
			}
			r.DS = fields[1]
		case "alg":
			if len(fields) != 2 {
				return nil, fmt.Errorf("crosscheck: line %d: malformed alg", lineNo)
			}
			r.Alg = fields[1]
		case "model":
			if len(fields) != 2 || (fields[1] != string(compute.FS) && fields[1] != string(compute.INC)) {
				return nil, fmt.Errorf("crosscheck: line %d: malformed model", lineNo)
			}
			r.Model = compute.Model(fields[1])
		case "source":
			if len(fields) != 2 {
				return nil, fmt.Errorf("crosscheck: line %d: malformed source", lineNo)
			}
			var src uint64
			src, err = strconv.ParseUint(fields[1], 10, 32)
			r.Source = graph.NodeID(src)
		case "batch":
			inStream = true
			r.Stream = append(r.Stream, Step{})
		case "add", "del":
			if !inStream {
				return nil, fmt.Errorf("crosscheck: line %d: %s before first batch", lineNo, key)
			}
			var e graph.Edge
			e, err = parseEdge(fields)
			if err == nil {
				step := &r.Stream[len(r.Stream)-1]
				if key == "add" {
					step.Adds = append(step.Adds, e)
				} else {
					step.Dels = append(step.Dels, e)
				}
			}
		default:
			return nil, fmt.Errorf("crosscheck: line %d: unknown directive %q", lineNo, key)
		}
		if err != nil {
			return nil, fmt.Errorf("crosscheck: line %d: %v", lineNo, err)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("crosscheck: %w", err)
	}
	if r.DS == "" {
		return nil, fmt.Errorf("crosscheck: repro names no data structure")
	}
	r.Note = strings.Join(noteLines, "\n")
	return r, nil
}

// ReadReproFile parses the repro at path.
func ReadReproFile(path string) (*Repro, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ParseRepro(f)
}

// Config builds the focused harness configuration that replays exactly
// the failure this repro captures. mk overrides structure construction
// (fault-injecting callers); nil uses the registry.
func (r *Repro) Config(mk func(name string) ds.Graph) Config {
	cfg := Config{
		Stream:        StreamConfig{Directed: r.Directed},
		Threads:       r.Threads,
		Structures:    []string{r.DS},
		MakeStructure: mk,
		StopAtFirst:   true,
	}
	if r.Alg == "" {
		cfg.TopologyOnly = true
	} else {
		cfg.Algorithms = []string{r.Alg}
		cfg.Models = []compute.Model{r.Model}
		cfg.Opts.Source = r.Source
	}
	return cfg
}

// Replay re-runs the repro and returns the resulting report; a repro that
// still reproduces yields a non-OK report.
func (r *Repro) Replay(mk func(name string) ds.Graph) *Report {
	return Replay(r.Config(mk), r.Stream)
}

// MinimizeFailure shrinks stream against the specific failure f found
// under cfg and packages the result as a replayable Repro. The predicate
// replays a focused configuration (one structure; one engine, or
// topology-only) so shrinking stays fast.
func MinimizeFailure(cfg Config, stream Stream, f Failure) *Repro {
	cfg = cfg.withDefaults()
	rep := &Repro{
		Directed: cfg.Stream.Directed,
		Threads:  cfg.Threads,
		DS:       f.DS,
		Alg:      f.Alg,
		Model:    f.Model,
		Source:   cfg.Opts.Source,
		Note:     f.String(),
	}
	focused := rep.Config(cfg.MakeStructure)
	// Preserve the sweep's tuning so values failures reproduce exactly.
	focused.Opts = cfg.Opts
	if f.Kind == "topology" {
		focused.TopologyOnly = true
		rep.Alg = ""
	}
	pred := func(s Stream) bool { return !Replay(focused, s).OK() }
	rep.Stream = Minimize(stream, pred)
	return rep
}
