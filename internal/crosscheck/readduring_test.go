package crosscheck

import (
	"os"
	"strings"
	"testing"

	"sagabench/internal/ds"
	_ "sagabench/internal/ds/all"
	"sagabench/internal/graph"
)

// TestReadDuringClean runs the differential on a healthy pipeline across
// both publication paths and both stream flavors: every mid-stream
// observation must be re-answerable from ground truth.
func TestReadDuringClean(t *testing.T) {
	for _, tc := range []struct {
		name    string
		view    bool
		deletes bool
	}{
		{"export/adds-only", false, false},
		{"export/deletes", false, true},
		{"view/adds-only", true, false},
		{"view/deletes", true, true},
	} {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			rep, err := ReadDuring(ReadDuringConfig{
				Stream: StreamConfig{
					Seed:      31 + int64(len(tc.name)),
					Batches:   10,
					BatchSize: 200,
					NumNodes:  64,
					Directed:  true,
					Deletes:   tc.deletes,
				},
				DS:              "adjshared",
				Readers:         4,
				MaxObsPerReader: 64,
				ComputeView:     tc.view,
				Threads:         2,
			})
			if err != nil {
				t.Fatal(err)
			}
			if !rep.OK() {
				for _, m := range rep.Mismatches {
					t.Errorf("mismatch: %s (deterministic=%v)", m, m.Deterministic)
				}
				t.Fatalf("read-during-update differential failed (panic: %q)", rep.ReaderPanic)
			}
			if rep.Batches != 10 {
				t.Fatalf("report covers %d batches, want 10", rep.Batches)
			}
			if rep.Observations == 0 {
				t.Fatal("readers recorded no observations — the differential was vacuous")
			}
			if rep.Checked == 0 || rep.Checked > rep.Observations {
				t.Fatalf("checked %d of %d observations", rep.Checked, rep.Observations)
			}
		})
	}
}

// truncatingGraph drops every edge that mentions the top vertex of the ID
// space, so the structure under test silently under-ingests: ground truth
// (built from the raw stream) sees a vertex the published epochs never
// acquire. Deterministic by construction — the minimizer must be able to
// shrink the failure.
type truncatingGraph struct {
	ds.Graph
	cut graph.NodeID
}

func (f *truncatingGraph) Update(b graph.Batch) {
	kept := make(graph.Batch, 0, len(b))
	for _, e := range b {
		if e.Src == f.cut || e.Dst == f.cut {
			continue
		}
		kept = append(kept, e)
	}
	f.Graph.Update(kept)
}

// TestReadDuringDetectsFault injects the truncating structure and demands
// the differential catch it, classify it as deterministic, and write a
// minimized reproducer.
func TestReadDuringDetectsFault(t *testing.T) {
	outDir := t.TempDir()
	const numNodes = 48
	cfg := ReadDuringConfig{
		Stream: StreamConfig{
			Seed:      7,
			Batches:   8,
			BatchSize: 150,
			NumNodes:  numNodes,
			Directed:  true,
		},
		DS:              "adjshared",
		Readers:         4,
		MaxObsPerReader: 64,
		Threads:         2,
		OutDir:          outDir,
		MakeStructure: func(name string) ds.Graph {
			return &truncatingGraph{
				Graph: ds.MustNew(name, ds.Config{Directed: true, Threads: 2}),
				cut:   numNodes - 1,
			}
		},
	}
	rep, err := ReadDuring(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep.OK() {
		t.Fatal("differential passed a structure that drops edges")
	}
	if len(rep.Mismatches) > maxMismatches {
		t.Fatalf("%d mismatches exceed the per-run cap of %d", len(rep.Mismatches), maxMismatches)
	}
	seen := map[[2]int]bool{}
	prev := ReadMismatch{Batch: -1}
	repros := 0
	for i, m := range rep.Mismatches {
		key := [2]int{m.Batch, int(m.Vertex)}
		if seen[key] {
			t.Fatalf("duplicate mismatch for batch %d vertex %d", m.Batch, m.Vertex)
		}
		seen[key] = true
		if m.Batch < prev.Batch || (m.Batch == prev.Batch && m.Vertex < prev.Vertex) {
			t.Fatalf("mismatches not sorted: %v after %v", m, prev)
		}
		prev = m
		if !m.Deterministic {
			t.Errorf("structural fault classified as nondeterministic: %s", m)
		}
		if m.ReproFile == "" {
			if i < maxRepros {
				t.Errorf("no reproducer written for mismatch %d: %s", i, m)
			}
			continue
		}
		repros++
		f, err := os.Open(m.ReproFile)
		if err != nil {
			t.Fatalf("reading reproducer: %v", err)
		}
		r, err := ParseRepro(f)
		f.Close()
		if err != nil {
			t.Fatalf("reproducer %s does not parse: %v", m.ReproFile, err)
		}
		if !strings.Contains(r.Note, "read-during-update") {
			t.Fatalf("reproducer note %q lacks provenance", r.Note)
		}
		if len(r.Stream) == 0 || len(r.Stream) > 8 {
			t.Fatalf("minimized stream has %d batches (original 8)", len(r.Stream))
		}
	}
	if repros == 0 {
		t.Fatal("no reproducer file written at all")
	}
}

// TestReadDuringConfigErrors covers construction failures.
func TestReadDuringConfigErrors(t *testing.T) {
	if _, err := ReadDuring(ReadDuringConfig{DS: "no-such-structure"}); err == nil {
		t.Fatal("unknown structure accepted")
	}
	if _, err := ReadDuring(ReadDuringConfig{DS: "adjshared", Alg: "no-such-alg"}); err == nil {
		t.Fatal("unknown algorithm accepted")
	}
}
