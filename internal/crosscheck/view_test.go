package crosscheck

import (
	"testing"
)

// TestComputeViewDifferential replays mixed streams with the flat
// compute-view mirror attached to every structure: the mirror's topology
// is diffed against the sequential oracle after every step, and every
// (algorithm, model) engine runs on the mirror with its values checked
// against the sequential reference — the flat kernels under the same
// multithreaded differential scrutiny as the interface path.
func TestComputeViewDifferential(t *testing.T) {
	for _, directed := range []bool{true, false} {
		rep := Run(Config{
			Stream:      StreamConfig{Seed: 77, Batches: 12, BatchSize: 200, NumNodes: 72, Directed: directed, Deletes: true},
			Threads:     4,
			ComputeView: true,
		})
		for _, f := range rep.Failures {
			t.Errorf("directed=%v: %s", directed, f)
		}
		if rep.TopologyChecks == 0 || rep.ValueChecks == 0 {
			t.Fatalf("directed=%v: no checks ran", directed)
		}
	}
}
