package crosscheck

import (
	"fmt"
	"math/rand"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"sagabench/internal/compute"
	"sagabench/internal/ds"
	"sagabench/internal/epoch"
	"sagabench/internal/graph"
	"sagabench/internal/snapshot"
)

// Read-during-update differential: a single writer replays a stream
// through one structure/engine pair, publishing an epoch snapshot after
// every batch exactly as core.Pipeline does, while concurrent readers pin
// epochs and record neighborhood/degree/value observations mid-stream.
// After the stream drains, every observation is re-answered from ground
// truth replayed to the observation's pinned batch — the adjacency from
// an internal/snapshot.Store (checkpoint + delta replay over the same
// stream) and the property vector from the sequential reference on the
// oracle — so a stale, torn, or scribbled epoch surfaces as a concrete
// (batch, vertex) mismatch. Mismatches are minimized to .repro files via
// a deterministic single-threaded re-check when the failure survives
// sequential replay; races that do not are written unshrunk.

// ReadDuringConfig parameterizes one read-during-update run.
type ReadDuringConfig struct {
	// Stream parameterizes generation (ReadDuring generates via NewStream).
	Stream StreamConfig
	// DS is the data structure under test (required).
	DS string
	// Alg/Model select the engine (default cc/FS — deletion-safe, exact
	// tolerance).
	Alg   string
	Model compute.Model
	// Threads is the worker count (default 4).
	Threads int
	// Readers is the concurrent reader count (default 4).
	Readers int
	// MaxObsPerReader caps recorded observations per reader so post-hoc
	// verification stays bounded (default 256).
	MaxObsPerReader int
	// ComputeView publishes the incrementally rebuilt CSR mirror (the
	// buffer-reuse path, where the reclaim protocol is load-bearing);
	// otherwise every batch publishes a freshly exported CSR.
	ComputeView bool
	// Opts carries algorithm tuning; zero gets the harness defaults.
	Opts compute.Options
	// MakeStructure overrides registry construction (fault injection).
	MakeStructure func(name string) ds.Graph
	// OutDir, when non-empty, receives one .repro file per distinct
	// mismatching vertex.
	OutDir string
}

func (c ReadDuringConfig) withDefaults() ReadDuringConfig {
	c.Stream = c.Stream.withDefaults()
	if c.Alg == "" {
		c.Alg = "cc"
	}
	if c.Model == "" {
		c.Model = compute.FS
	}
	if c.Threads <= 0 {
		c.Threads = 4
	}
	if c.Readers <= 0 {
		c.Readers = 4
	}
	if c.MaxObsPerReader <= 0 {
		c.MaxObsPerReader = 256
	}
	if c.Opts.PRTolerance == 0 {
		c.Opts.PRTolerance = 1e-12
	}
	if c.Opts.PRMaxIters == 0 {
		c.Opts.PRMaxIters = 200
	}
	if c.Opts.Epsilon == 0 {
		c.Opts.Epsilon = 1e-12
	}
	c.Opts.Threads = c.Threads
	return c
}

// ReadMismatch is one mid-stream observation that ground truth refutes.
type ReadMismatch struct {
	// Batch/Epoch locate the pinned snapshot; Vertex the query.
	Batch  int
	Epoch  uint64
	Vertex graph.NodeID
	// Detail describes the divergence.
	Detail string
	// Deterministic reports whether a single-threaded sequential replay
	// reproduces the mismatch (false strongly suggests a publication race
	// rather than a structural bug).
	Deterministic bool
	// ReproFile is the minimized (or, for nondeterministic failures,
	// unshrunk) reproducer, when OutDir was set.
	ReproFile string
}

func (m ReadMismatch) String() string {
	return fmt.Sprintf("batch %d epoch %d vertex %d: %s", m.Batch, m.Epoch, m.Vertex, m.Detail)
}

// ReadDuringReport summarizes one run.
type ReadDuringReport struct {
	// Batches is the stream length; Observations the mid-stream queries
	// recorded; Checked the ground-truth re-answers performed.
	Batches      int
	Observations int
	Checked      int
	// Mismatches lists refuted observations (deduplicated by (batch,
	// vertex)), capped at maxMismatches per run; Suppressed counts the
	// distinct failing pairs beyond the cap, so a mass failure is never
	// silently truncated.
	Mismatches []ReadMismatch
	Suppressed int
	// ReaderPanic carries the first reader panic, if any.
	ReaderPanic string
}

// maxMismatches bounds per-run mismatch classification (each runs a
// sequential replay); maxRepros bounds reproducer minimization (each runs
// up to a full shrink budget of replays).
const (
	maxMismatches = 16
	maxRepros     = 3
)

// OK reports whether every mid-stream observation matched ground truth.
func (r *ReadDuringReport) OK() bool {
	return len(r.Mismatches) == 0 && r.Suppressed == 0 && r.ReaderPanic == ""
}

// observation is one pinned-epoch read, copied out so it survives release.
type observation struct {
	batch  int
	epoch  uint64
	vertex graph.NodeID
	nodes  int
	outDeg int
	inDeg  int
	out    []graph.Neighbor // copied; sorted by ID for comparison
	value  float64
	hasVal bool
}

// rdWriter is the per-batch publication pipeline shared by the live
// concurrent run and the deterministic replay predicate: structure +
// optional mirror + engine + epoch manager, stepped one batch at a time
// exactly as core.Pipeline's apply does.
type rdWriter struct {
	cfg    ReadDuringConfig
	g      ds.Graph
	view   *ds.ComputeView
	engine compute.Engine
	em     *epoch.Manager
	batch  int
}

func newRDWriter(cfg ReadDuringConfig) (*rdWriter, error) {
	w := &rdWriter{cfg: cfg}
	var err error
	if cfg.MakeStructure != nil {
		w.g = cfg.MakeStructure(cfg.DS)
	} else {
		w.g, err = ds.New(cfg.DS, ds.Config{Directed: cfg.Stream.Directed, Threads: cfg.Threads})
		if err != nil {
			return nil, err
		}
	}
	if cfg.ComputeView {
		w.view, _ = ds.NewComputeView(w.g, cfg.Threads)
	}
	w.engine, err = compute.NewEngine(cfg.Alg, cfg.Model, cfg.Opts)
	if err != nil {
		return nil, err
	}
	if cfg.Stream.Deletes {
		if !ds.SupportsDelete(w.g) {
			return nil, fmt.Errorf("crosscheck: %s does not support deletions", cfg.DS)
		}
		if !w.engine.HandlesDeletions() {
			return nil, fmt.Errorf("crosscheck: %s/%s cannot process deletions", cfg.Alg, cfg.Model)
		}
	}
	w.em = epoch.NewManager(w.view != nil)
	return w, nil
}

// step applies one stream step and publishes the post-batch epoch.
func (w *rdWriter) step(st Step) error {
	var olds graph.Batch
	if wca, ok := w.engine.(compute.WeightChangeAware); ok && wca.WantsWeightChanges() {
		olds = ds.Overwritten(w.g, st.Adds)
	}
	w.g.Update(st.Adds)
	if len(st.Dels) > 0 {
		if err := w.g.(ds.Deleter).Delete(st.Dels); err != nil {
			return err
		}
	}
	cg := w.g
	if w.view != nil {
		// The reclaim gate under test: the refresh may not scribble the
		// spare arrays while the snapshot that owns them is pinned.
		if w.em.ReclaimSpare() {
			w.view.DropSpares()
		}
		w.view.Refresh(st.Adds, st.Dels)
		cg = w.view
	}
	if invalidating := append(append(graph.Batch{}, olds...), st.Dels...); len(invalidating) > 0 {
		if da, ok := w.engine.(compute.DeletionAware); ok {
			da.NotifyDeletions(cg, invalidating)
		}
	}
	w.engine.PerformAlg(cg, affectedOf(st, w.g.NumNodes()))

	var csr graph.CSR
	if w.view != nil {
		csr = *w.view.FlatCSR()
	} else {
		csr = *graph.BuildCSR(w.g.NumNodes(), ds.ExportEdges(w.g))
	}
	w.em.Publish(&epoch.Snapshot{
		Batch:    w.batch,
		CSR:      csr,
		Values:   append([]float64(nil), w.engine.Values()...),
		Directed: w.cfg.Stream.Directed,
	})
	if w.view == nil {
		w.em.ForgetSpare()
	}
	w.batch++
	return nil
}

// affectedOf mirrors core.Pipeline's affected-set construction.
func affectedOf(st Step, n int) []graph.NodeID {
	var affected []graph.NodeID
	seen := map[graph.NodeID]bool{}
	for _, b := range []graph.Batch{st.Adds, st.Dels} {
		for _, e := range b {
			for _, v := range [2]graph.NodeID{e.Src, e.Dst} {
				if !seen[v] && int(v) < n {
					seen[v] = true
					affected = append(affected, v)
				}
			}
		}
	}
	return affected
}

// ReadDuring generates the stream for cfg and runs the read-during-update
// differential.
func ReadDuring(cfg ReadDuringConfig) (*ReadDuringReport, error) {
	cfg = cfg.withDefaults()
	stream := NewStream(cfg.Stream)
	return ReplayReadDuring(cfg, stream)
}

// ReplayReadDuring runs the differential over an explicit stream.
func ReplayReadDuring(cfg ReadDuringConfig, stream Stream) (*ReadDuringReport, error) {
	cfg = cfg.withDefaults()
	rep := &ReadDuringReport{Batches: len(stream)}

	// Ground truth, accumulated as the writer advances: the history store
	// replays adjacency to any batch, refs holds the per-batch sequential
	// reference vectors.
	store := snapshot.New(snapshot.Config{Directed: cfg.Stream.Directed, Every: 4})
	oracle := graph.NewOracle(cfg.Stream.Directed)
	refs := make([][]float64, 0, len(stream))

	w, err := newRDWriter(cfg)
	if err != nil {
		return nil, err
	}

	// Concurrent readers: pin, sample random vertices, copy what they see,
	// release. They stop when Pin returns nil after Close. Each reader
	// reports its running observation count so the writer can hold the
	// manager open after the last batch until a minimum quota of
	// observations exists — otherwise a fast stream could outrun the
	// scheduler and drain before any reader pinned a single epoch, making
	// the differential vacuously green.
	quota := cfg.MaxObsPerReader
	if quota > 16 {
		quota = 16
	}
	var wg sync.WaitGroup
	obsPerReader := make([][]observation, cfg.Readers)
	obsCount := make([]atomic.Int64, cfg.Readers)
	panicCh := make(chan string, cfg.Readers)
	done := make(chan struct{})
	for i := 0; i < cfg.Readers; i++ {
		wg.Add(1)
		go func(slot int, seed int64) {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					select {
					case panicCh <- fmt.Sprintf("reader %d: %v", slot, r):
					default:
					}
				}
			}()
			rng := rand.New(rand.NewSource(seed))
			var obs []observation
			for len(obs) < cfg.MaxObsPerReader {
				s := w.em.Pin()
				if s == nil {
					select {
					case <-done: // writer finished and closed the manager
					default:
						runtime.Gosched() // nothing published yet
						continue
					}
					break
				}
				n := s.NumNodes()
				if n > 0 {
					v := graph.NodeID(rng.Intn(n))
					o := observation{
						batch:  s.Batch,
						epoch:  s.Epoch,
						vertex: v,
						nodes:  n,
						outDeg: s.OutDegree(v),
						inDeg:  s.InDegree(v),
						out:    append([]graph.Neighbor(nil), s.Out(v)...),
					}
					o.value, o.hasVal = s.Value(v)
					sort.Slice(o.out, func(a, b int) bool { return o.out[a].ID < o.out[b].ID })
					obs = append(obs, o)
					obsCount[slot].Store(int64(len(obs)))
				}
				w.em.Release(s)
			}
			obsPerReader[slot] = obs
		}(i, cfg.Stream.Seed+int64(i)*7919)
	}

	var stepErr error
	for _, st := range stream {
		oracle.Update(st.Adds)
		oracle.Delete(st.Dels)
		refs = append(refs, compute.MustReference(cfg.Alg, oracle, cfg.Opts))
		store.Observe(st.Adds, st.Dels)
		if stepErr = w.step(st); stepErr != nil {
			break
		}
	}
	// Quota wait: only meaningful when an epoch with vertices exists for
	// readers to observe (a reader on an empty graph records nothing).
	if stepErr == nil && w.g.NumNodes() > 0 && len(stream) > 0 {
		for len(panicCh) == 0 { // a dead reader's count never advances
			settled := true
			for i := range obsCount {
				if obsCount[i].Load() < int64(quota) {
					settled = false
					break
				}
			}
			if settled {
				break
			}
			runtime.Gosched()
		}
	}
	w.em.Close()
	close(done)
	wg.Wait()
	if stepErr != nil {
		return nil, stepErr
	}
	select {
	case rep.ReaderPanic = <-panicCh:
	default:
	}

	// Post-hoc verification: re-answer every observation from ground
	// truth at its pinned batch. Deduplicate failing (batch, vertex)
	// pairs — many readers see the same broken epoch.
	seen := map[[2]int]bool{}
	tol := compute.Tolerance(cfg.Alg)
	for _, obs := range obsPerReader {
		for _, o := range obs {
			rep.Observations++
			key := [2]int{o.batch, int(o.vertex)}
			if seen[key] {
				continue
			}
			detail := checkObservation(o, store, refs, tol)
			rep.Checked++
			if detail == "" {
				continue
			}
			seen[key] = true
			rep.Mismatches = append(rep.Mismatches,
				ReadMismatch{Batch: o.batch, Epoch: o.epoch, Vertex: o.vertex, Detail: detail})
		}
	}
	// Sort before classifying so the capped classification and repro
	// budgets land on the earliest (batch, vertex) pairs deterministically,
	// not on whichever reader happened to report first.
	sort.Slice(rep.Mismatches, func(i, j int) bool {
		if rep.Mismatches[i].Batch != rep.Mismatches[j].Batch {
			return rep.Mismatches[i].Batch < rep.Mismatches[j].Batch
		}
		return rep.Mismatches[i].Vertex < rep.Mismatches[j].Vertex
	})
	if len(rep.Mismatches) > maxMismatches {
		rep.Suppressed = len(rep.Mismatches) - maxMismatches
		rep.Mismatches = rep.Mismatches[:maxMismatches]
	}
	for i := range rep.Mismatches {
		finishMismatch(&rep.Mismatches[i], cfg, stream, i < maxRepros)
	}
	return rep, nil
}

// checkObservation re-answers one observation from ground truth; "" means
// it holds up.
func checkObservation(o observation, store *snapshot.Store, refs [][]float64, tol float64) string {
	if o.batch < 0 || o.batch >= store.Batches() {
		return fmt.Sprintf("pinned batch outside observed range [0,%d)", store.Batches())
	}
	truth, err := store.At(o.batch)
	if err != nil {
		return fmt.Sprintf("ground-truth replay failed: %v", err)
	}
	if o.nodes != truth.NumNodes() {
		return fmt.Sprintf("snapshot has %d vertices, ground truth %d", o.nodes, truth.NumNodes())
	}
	v := o.vertex
	if got, want := o.outDeg, truth.OutDegree(v); got != want {
		return fmt.Sprintf("out-degree %d, ground truth %d", got, want)
	}
	if got, want := o.inDeg, truth.InDegree(v); got != want {
		return fmt.Sprintf("in-degree %d, ground truth %d", got, want)
	}
	want := truth.Out(v) // BuildCSR runs are ID-sorted, like o.out
	if len(o.out) != len(want) {
		return fmt.Sprintf("out-run length %d, ground truth %d", len(o.out), len(want))
	}
	for i := range want {
		if o.out[i].ID != want[i].ID || o.out[i].Weight != want[i].Weight {
			return fmt.Sprintf("out-neighbor %d is (%d,%g), ground truth (%d,%g)",
				i, o.out[i].ID, o.out[i].Weight, want[i].ID, want[i].Weight)
		}
	}
	ref := refs[o.batch]
	if o.hasVal != (int(v) < len(ref)) {
		return fmt.Sprintf("value presence %v, reference vector has %d slots", o.hasVal, len(ref))
	}
	if o.hasVal {
		if idx := compute.DiffValues([]float64{o.value}, []float64{ref[v]}, tol); idx >= 0 {
			return fmt.Sprintf("value %g, reference %g", o.value, ref[v])
		}
	}
	return ""
}

// finishMismatch classifies the mismatch (deterministic or not) and, when
// OutDir is set and the per-run repro budget allows, writes a reproducer —
// minimized for deterministic failures, unshrunk (with a note) for racy
// ones.
func finishMismatch(m *ReadMismatch, cfg ReadDuringConfig, stream Stream, writeRepro bool) {
	pred := func(cand Stream) bool { return sequentialReadCheck(cfg, cand, m.Vertex) != "" }
	m.Deterministic = pred(stream)
	if cfg.OutDir == "" || !writeRepro {
		return
	}
	rep := &Repro{
		Directed: cfg.Stream.Directed,
		Threads:  cfg.Threads,
		DS:       cfg.DS,
		Alg:      cfg.Alg,
		Model:    cfg.Model,
		Source:   cfg.Opts.Source,
		Stream:   stream,
	}
	if m.Deterministic {
		rep.Note = fmt.Sprintf("read-during-update (sequentially reproducible): %s", m)
		rep.Stream = Minimize(stream, pred)
	} else {
		rep.Note = fmt.Sprintf("read-during-update (NOT sequentially reproducible; likely a publication race): %s", m)
	}
	path := fmt.Sprintf("%s/readduring-%s-%s-%s-b%d-v%d.repro", cfg.OutDir, cfg.DS, cfg.Alg, cfg.Model, m.Batch, m.Vertex)
	if err := rep.WriteFile(path); err == nil {
		m.ReproFile = path
	}
}

// sequentialReadCheck replays cand single-writer with no concurrency,
// pinning the published epoch after every batch and re-answering vertex v
// against ground truth immediately. Returns the first mismatch detail, or
// "". This is the deterministic predicate minimization shrinks against.
func sequentialReadCheck(cfg ReadDuringConfig, cand Stream, v graph.NodeID) string {
	w, err := newRDWriter(cfg)
	if err != nil {
		return fmt.Sprintf("construction failed: %v", err)
	}
	defer w.em.Close()
	store := snapshot.New(snapshot.Config{Directed: cfg.Stream.Directed, Every: 4})
	oracle := graph.NewOracle(cfg.Stream.Directed)
	refs := make([][]float64, 0, len(cand))
	tol := compute.Tolerance(cfg.Alg)
	for _, st := range cand {
		oracle.Update(st.Adds)
		oracle.Delete(st.Dels)
		refs = append(refs, compute.MustReference(cfg.Alg, oracle, cfg.Opts))
		store.Observe(st.Adds, st.Dels)
		if err := w.step(st); err != nil {
			return fmt.Sprintf("step failed: %v", err)
		}
		s := w.em.Pin()
		if s == nil {
			return "publish produced no epoch"
		}
		n := s.NumNodes()
		if int(v) < n {
			o := observation{
				batch:  s.Batch,
				epoch:  s.Epoch,
				vertex: v,
				nodes:  n,
				outDeg: s.OutDegree(v),
				inDeg:  s.InDegree(v),
				out:    append([]graph.Neighbor(nil), s.Out(v)...),
			}
			o.value, o.hasVal = s.Value(v)
			sort.Slice(o.out, func(a, b int) bool { return o.out[a].ID < o.out[b].ID })
			w.em.Release(s)
			if detail := checkObservation(o, store, refs, tol); detail != "" {
				return detail
			}
		} else {
			w.em.Release(s)
		}
	}
	return ""
}
