package crosscheck

import "sagabench/internal/graph"

// Stream minimization: given a failing stream and a predicate that
// replays a candidate and reports whether it still fails, shrink in two
// phases — drop whole batches first, then drop edges within the
// surviving batches (chunk-halving down to single edges, ddmin-style).
// The predicate must be deterministic; the harness's Replay is.

// shrinkBudget caps predicate invocations so pathological cases stay
// bounded; minimization is best-effort, not optimal.
const shrinkBudget = 6000

type shrinker struct {
	fails func(Stream) bool
	calls int
}

// Minimize returns a (usually much) smaller stream that still satisfies
// fails. The input stream itself must fail; Minimize panics otherwise so
// a broken predicate is caught immediately rather than silently returning
// an unshrunk stream.
func Minimize(stream Stream, fails func(Stream) bool) Stream {
	if !fails(stream) {
		panic("crosscheck: Minimize called with a passing stream")
	}
	sh := &shrinker{fails: fails}
	cur := stream.clone()
	cur = sh.dropBatches(cur)
	cur = sh.dropEdges(cur)
	// Dropping edges can make further whole batches droppable (e.g. a
	// now-empty step); run one more batch pass with what's left.
	cur = sh.dropBatches(cur)
	return cur
}

func (sh *shrinker) test(s Stream) bool {
	if sh.calls >= shrinkBudget {
		return false
	}
	sh.calls++
	return sh.fails(s)
}

// dropBatches repeatedly removes chunks of consecutive steps while the
// stream still fails, halving the chunk size down to single steps.
func (sh *shrinker) dropBatches(cur Stream) Stream {
	for chunk := len(cur) / 2; chunk >= 1; chunk /= 2 {
		for start := 0; start+chunk <= len(cur); {
			cand := make(Stream, 0, len(cur)-chunk)
			cand = append(cand, cur[:start]...)
			cand = append(cand, cur[start+chunk:]...)
			if sh.test(cand) {
				cur = cand // keep position: the next chunk slid into place
			} else {
				start += chunk
			}
		}
	}
	return cur
}

// dropEdges shrinks each surviving step's add and delete batches.
func (sh *shrinker) dropEdges(cur Stream) Stream {
	for i := range cur {
		cur[i].Adds = sh.shrinkBatch(cur, i, false)
		cur[i].Dels = sh.shrinkBatch(cur, i, true)
	}
	return cur
}

// shrinkBatch minimizes one step's adds or dels in place by chunk
// removal, returning the minimized batch.
func (sh *shrinker) shrinkBatch(cur Stream, idx int, dels bool) graph.Batch {
	set := func(b graph.Batch) {
		if dels {
			cur[idx].Dels = b
		} else {
			cur[idx].Adds = b
		}
	}
	edges := cur[idx].Adds
	if dels {
		edges = cur[idx].Dels
	}
	for chunk := (len(edges) + 1) / 2; chunk >= 1; chunk /= 2 {
		for start := 0; start+chunk <= len(edges); {
			cand := make(graph.Batch, 0, len(edges)-chunk)
			cand = append(cand, edges[:start]...)
			cand = append(cand, edges[start+chunk:]...)
			set(cand)
			if sh.test(cur) {
				edges = cand
			} else {
				start += chunk
			}
			set(edges)
		}
	}
	return edges
}
