package crosscheck

import (
	"bytes"
	"strings"
	"testing"

	"sagabench/internal/compute"
	"sagabench/internal/ds"
	_ "sagabench/internal/ds/all"
	"sagabench/internal/graph"
)

func TestStreamDeterministic(t *testing.T) {
	cfg := StreamConfig{Seed: 42, Batches: 12, BatchSize: 150, NumNodes: 64, Directed: true, Deletes: true}
	a, b := NewStream(cfg), NewStream(cfg)
	if len(a) != len(b) {
		t.Fatalf("lengths %d/%d differ across same-seed runs", len(a), len(b))
	}
	for i := range a {
		if len(a[i].Adds) != len(b[i].Adds) || len(a[i].Dels) != len(b[i].Dels) {
			t.Fatalf("step %d shapes differ", i)
		}
		for j := range a[i].Adds {
			if a[i].Adds[j] != b[i].Adds[j] {
				t.Fatalf("step %d add %d differs", i, j)
			}
		}
		for j := range a[i].Dels {
			if a[i].Dels[j] != b[i].Dels[j] {
				t.Fatalf("step %d del %d differs", i, j)
			}
		}
	}
	c := NewStream(StreamConfig{Seed: 43, Batches: 12, BatchSize: 150, NumNodes: 64, Directed: true, Deletes: true})
	same := len(a) == len(c)
	if same {
	outer:
		for i := range a {
			if len(a[i].Adds) != len(c[i].Adds) {
				same = false
				break
			}
			for j := range a[i].Adds {
				if a[i].Adds[j] != c[i].Adds[j] {
					same = false
					break outer
				}
			}
		}
	}
	if same {
		t.Fatal("different seeds produced identical streams")
	}
}

// TestStreamDeleteWeightsMatchLiveEdges asserts the generator's invariant
// that a deletion of a present edge carries the weight that edge holds at
// delete time (trimming correctness depends on it).
func TestStreamDeleteWeightsMatchLiveEdges(t *testing.T) {
	for _, directed := range []bool{true, false} {
		stream := NewStream(StreamConfig{Seed: 7, Batches: 30, BatchSize: 200, NumNodes: 48, Directed: directed, Deletes: true})
		o := graph.NewOracle(directed)
		for i, step := range stream {
			o.Update(step.Adds)
			for _, d := range step.Dels {
				cur := o.Out(d.Src)
				for _, nb := range cur {
					if nb.ID == d.Dst && nb.Weight != d.Weight {
						t.Fatalf("step %d: delete (%d,%d) weight %v, live edge holds %v",
							i, d.Src, d.Dst, d.Weight, nb.Weight)
					}
				}
			}
			o.Delete(step.Dels)
		}
	}
}

// TestCleanRunAllStructures is the harness's primary self-check: every
// registered structure, all six algorithms, both models, insert-only and
// mixed, directed and undirected — all must match the sequential oracle.
func TestCleanRunAllStructures(t *testing.T) {
	if testing.Short() {
		t.Skip("differential sweep is not short")
	}
	for _, tc := range []struct {
		name string
		cfg  StreamConfig
	}{
		{"directed-inserts", StreamConfig{Seed: 1, Batches: 10, BatchSize: 250, NumNodes: 80, Directed: true}},
		{"directed-mixed", StreamConfig{Seed: 2, Batches: 10, BatchSize: 250, NumNodes: 80, Directed: true, Deletes: true}},
		{"undirected-mixed", StreamConfig{Seed: 3, Batches: 8, BatchSize: 200, NumNodes: 64, Deletes: true}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			rep := Run(Config{Stream: tc.cfg, Threads: 4})
			if !rep.OK() {
				for _, f := range rep.Failures {
					t.Errorf("%s", f)
				}
			}
			if rep.TopologyChecks == 0 || rep.ValueChecks == 0 {
				t.Fatalf("harness did no work: %+v", rep)
			}
			wantValueChecks := rep.TopologyChecks * len(compute.AlgNames()) * 2
			if rep.OK() && rep.ValueChecks != wantValueChecks {
				t.Fatalf("ValueChecks=%d want %d", rep.ValueChecks, wantValueChecks)
			}
		})
	}
}

// faultyMaker wraps one named structure with a defect, building every
// other structure normally.
func faultyMaker(t *testing.T, target string, spec FaultSpec, directed bool, threads int) func(string) ds.Graph {
	t.Helper()
	return func(name string) ds.Graph {
		g := ds.MustNew(name, ds.Config{Directed: directed, Threads: threads})
		if name == target {
			return InjectFault(g, spec)
		}
		return g
	}
}

// TestInjectedFaultIsCaughtAndMinimized is the acceptance self-test: a
// deliberately injected off-by-one (an edge silently dropped at a degree
// boundary) must be caught, minimized to a handful of edges, and yield a
// repro file that round-trips and still reproduces the failure.
func TestInjectedFaultIsCaughtAndMinimized(t *testing.T) {
	spec := FaultSpec{Fault: FaultDegreeCap, Cap: 5}
	mk := faultyMaker(t, "adjshared", spec, true, 4)
	cfg := Config{
		Stream:        StreamConfig{Seed: 11, Batches: 15, BatchSize: 300, NumNodes: 40, Directed: true},
		Threads:       4,
		MakeStructure: mk,
		StopAtFirst:   true,
	}
	stream := NewStream(cfg.Stream)
	rep := Replay(cfg, stream)
	if rep.OK() {
		t.Fatal("harness missed the injected degree-cap fault")
	}
	f := rep.Failures[0]
	if f.DS != "adjshared" {
		t.Fatalf("fault attributed to %q, injected into adjshared", f.DS)
	}

	repro := MinimizeFailure(cfg, stream, f)
	adds, dels := repro.Stream.NumEdges()
	origAdds, _ := stream.NumEdges()
	t.Logf("minimized %d adds -> %d adds, %d dels, %d batches (failure: %s)",
		origAdds, adds, dels, len(repro.Stream), f)
	// The minimal trigger is cap+1 distinct out-edges of one vertex; give
	// the shrinker generous slack but require real minimization.
	if adds > 3*(spec.Cap+1) || len(repro.Stream) > 3 {
		t.Fatalf("weak minimization: %d adds in %d batches", adds, len(repro.Stream))
	}

	// The minimized repro must still reproduce under the same fault...
	if repro.Replay(mk).OK() {
		t.Fatal("minimized repro no longer reproduces the failure")
	}
	// ...and pass on the healthy structure (the defect is in the wrapper,
	// not the stream).
	if got := repro.Replay(nil); !got.OK() {
		t.Fatalf("minimized repro fails on the healthy structure: %v", got.Failures)
	}

	// Round-trip through the file format.
	var buf bytes.Buffer
	if err := repro.Write(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ParseRepro(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("parse of written repro: %v\n%s", err, buf.String())
	}
	if back.DS != repro.DS || back.Directed != repro.Directed || len(back.Stream) != len(repro.Stream) {
		t.Fatalf("round trip changed repro: %+v vs %+v", back, repro)
	}
	if back.Replay(mk).OK() {
		t.Fatal("parsed repro no longer reproduces the failure")
	}
}

// TestDroppedEdgeFaultMinimizesToOneEdge checks the sharpest case: a
// single swallowed insert shrinks to a one-edge, one-batch repro.
func TestDroppedEdgeFaultMinimizesToOneEdge(t *testing.T) {
	scfg := StreamConfig{Seed: 5, Batches: 10, BatchSize: 200, NumNodes: 50, Directed: true}
	stream := NewStream(scfg)
	// Drop a pair the stream certainly contains: its first edge.
	victim := stream[0].Adds[0]
	spec := FaultSpec{Fault: FaultDropEdge, Src: victim.Src, Dst: victim.Dst}
	mk := faultyMaker(t, "dah", spec, true, 4)
	cfg := Config{Stream: scfg, Threads: 4, MakeStructure: mk, StopAtFirst: true, TopologyOnly: true}

	rep := Replay(cfg, stream)
	if rep.OK() {
		t.Fatal("harness missed the dropped edge")
	}
	repro := MinimizeFailure(cfg, stream, rep.Failures[0])
	adds, dels := repro.Stream.NumEdges()
	if len(repro.Stream) != 1 || adds != 1 || dels != 0 {
		t.Fatalf("want 1-batch 1-add repro, got %d batches %d adds %d dels", len(repro.Stream), adds, dels)
	}
	e := repro.Stream[0].Adds[0]
	if e.Src != victim.Src || e.Dst != victim.Dst {
		t.Fatalf("minimized to wrong edge (%d,%d), victim (%d,%d)", e.Src, e.Dst, victim.Src, victim.Dst)
	}
}

// TestStaleWeightFaultCaught checks the overwrite path is actually
// differential-tested: a structure that ignores re-insert weights must
// fail the weight comparison.
func TestStaleWeightFaultCaught(t *testing.T) {
	mk := faultyMaker(t, "stinger", FaultSpec{Fault: FaultStaleWeight}, true, 2)
	cfg := Config{
		Stream:        StreamConfig{Seed: 9, Batches: 12, BatchSize: 150, NumNodes: 24, Directed: true},
		Threads:       2,
		MakeStructure: mk,
		StopAtFirst:   true,
		TopologyOnly:  true,
	}
	rep := Run(cfg)
	if rep.OK() {
		t.Fatal("harness missed the stale-weight fault")
	}
	if !strings.Contains(rep.Failures[0].Detail, "weight") {
		t.Fatalf("expected a weight mismatch, got: %s", rep.Failures[0])
	}
}

func TestMinimizePanicsOnPassingStream(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Minimize accepted a passing stream")
		}
	}()
	Minimize(Stream{{}}, func(Stream) bool { return false })
}

func TestMinimizeSyntheticPredicate(t *testing.T) {
	// Failure iff the stream contains edge (7,8) and (3,4) in any steps:
	// minimization must converge to exactly those two edges.
	stream := NewStream(StreamConfig{Seed: 21, Batches: 6, BatchSize: 100, NumNodes: 30, Directed: true})
	stream[1].Adds = append(stream[1].Adds, graph.Edge{Src: 7, Dst: 8, Weight: 1})
	stream[4].Adds = append(stream[4].Adds, graph.Edge{Src: 3, Dst: 4, Weight: 1})
	has := func(s Stream, src, dst graph.NodeID) bool {
		for _, st := range s {
			for _, e := range st.Adds {
				if e.Src == src && e.Dst == dst {
					return true
				}
			}
		}
		return false
	}
	min := Minimize(stream, func(s Stream) bool {
		return has(s, 7, 8) && has(s, 3, 4)
	})
	adds, dels := min.NumEdges()
	if adds != 2 || dels != 0 {
		t.Fatalf("minimized to %d adds %d dels, want exactly 2 adds", adds, dels)
	}
	if !has(min, 7, 8) || !has(min, 3, 4) {
		t.Fatalf("minimized stream lost the trigger edges: %+v", min)
	}
}

func TestParseReproRejectsGarbage(t *testing.T) {
	for _, in := range []string{
		"",
		"not a repro\n",
		"sagafuzz repro v1\n", // no ds
		"sagafuzz repro v1\nds dah\nadd 1 2 3\n",      // add before batch
		"sagafuzz repro v1\nds dah\nbatch\nadd 1 2\n", // short edge
		"sagafuzz repro v1\nds dah\nbatch\nwat 1 2\n", // unknown directive
		"sagafuzz repro v1\nds dah\nmodel warp\n",     // bad model
		"sagafuzz repro v1\nds dah\nbatch\nbatch\nthreads 2\n", // config after stream
	} {
		if _, err := ParseRepro(strings.NewReader(in)); err == nil {
			t.Errorf("ParseRepro accepted %q", in)
		}
	}
}

func TestReproReplayValuesFailure(t *testing.T) {
	// A values-kind repro (wrong INC answer) must replay through the
	// engine path: craft one via the degree-cap fault with topology
	// checking implicitly catching it first — so instead check that a
	// values-focused config re-runs engines at all.
	r := &Repro{
		Directed: true, Threads: 2, DS: "adjshared", Alg: "bfs", Model: compute.INC,
		Stream: Stream{{Adds: graph.Batch{{Src: 0, Dst: 1, Weight: 1}}}},
	}
	rep := r.Replay(nil)
	if !rep.OK() {
		t.Fatalf("healthy values replay failed: %v", rep.Failures)
	}
	if rep.ValueChecks != 1 || rep.TopologyChecks != 1 {
		t.Fatalf("focused replay ran %d topology / %d value checks, want 1/1", rep.TopologyChecks, rep.ValueChecks)
	}
}
