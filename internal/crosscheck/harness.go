package crosscheck

import (
	"fmt"
	"sort"

	"sagabench/internal/compute"
	"sagabench/internal/ds"
	"sagabench/internal/graph"
)

// Config selects what a differential run checks. Zero values mean "all":
// every registered data structure, all six algorithms, both models.
type Config struct {
	// Stream parameterizes generation (Run) and declares directedness
	// (Replay reads Stream.Directed even for explicit streams).
	Stream StreamConfig
	// Threads is the worker count for both phases (default 4, so the
	// concurrent ingestion paths actually interleave).
	Threads int
	// Structures restricts the data structures (default ds.Names()).
	Structures []string
	// Algorithms restricts the algorithms (default compute.AlgNames()).
	Algorithms []string
	// Models restricts the compute models (default both).
	Models []compute.Model
	// TopologyOnly skips the compute engines entirely.
	TopologyOnly bool
	// ComputeView maintains a flat CSR mirror per structure (where the
	// structure supports one), refreshes it after every step, checks the
	// mirror's topology against the oracle too, and hands the mirror —
	// not the structure — to the engines, exercising the flat kernels
	// differentially.
	ComputeView bool
	// Opts carries algorithm tuning. The zero value is replaced by tight
	// tolerances (PRTolerance 1e-12, PRMaxIters 200, Epsilon 1e-12) so
	// both models track the sequential reference closely.
	Opts compute.Options
	// MakeStructure overrides registry construction; tests use it to
	// inject deliberately faulty structures. nil uses ds.New.
	MakeStructure func(name string) ds.Graph
	// StopAtFirst returns after the first failure instead of completing
	// the sweep (the shrinker's predicate uses this).
	StopAtFirst bool
	// MaxDiffs caps per-failure detail strings (default 4).
	MaxDiffs int
}

func (c Config) withDefaults() Config {
	c.Stream = c.Stream.withDefaults()
	if c.Threads <= 0 {
		c.Threads = 4
	}
	if len(c.Structures) == 0 {
		c.Structures = ds.Names()
	}
	if len(c.Algorithms) == 0 {
		c.Algorithms = compute.AlgNames()
	}
	if len(c.Models) == 0 {
		c.Models = []compute.Model{compute.FS, compute.INC}
	}
	if c.Opts.PRTolerance == 0 {
		c.Opts.PRTolerance = 1e-12
	}
	if c.Opts.PRMaxIters == 0 {
		c.Opts.PRMaxIters = 200
	}
	if c.Opts.Epsilon == 0 {
		c.Opts.Epsilon = 1e-12
	}
	c.Opts.Threads = c.Threads
	if c.MaxDiffs <= 0 {
		c.MaxDiffs = 4
	}
	return c
}

func (c Config) makeStructure(name string) (ds.Graph, error) {
	if c.MakeStructure != nil {
		return c.MakeStructure(name), nil
	}
	return ds.New(name, ds.Config{Directed: c.Stream.Directed, Threads: c.Threads})
}

// Failure describes one divergence from the sequential oracle.
type Failure struct {
	// DS is the data structure under test.
	DS string
	// Kind is "topology" (adjacency diverged from the oracle) or
	// "values" (an engine's property vector diverged from the reference).
	Kind string
	// Alg/Model identify the engine for values failures.
	Alg   string
	Model compute.Model
	// Batch is the 0-based step index after which the check failed.
	Batch int
	// Detail is a human-readable description of the first mismatches.
	Detail string
}

func (f Failure) String() string {
	if f.Kind == "topology" {
		return fmt.Sprintf("%s: batch %d: topology: %s", f.DS, f.Batch, f.Detail)
	}
	return fmt.Sprintf("%s: batch %d: %s/%s: %s", f.DS, f.Batch, f.Alg, f.Model, f.Detail)
}

// Report summarizes one differential run.
type Report struct {
	// Batches is the replayed stream length.
	Batches int
	// Structures lists the structures checked.
	Structures []string
	// TopologyChecks / ValueChecks count the comparisons performed.
	TopologyChecks int
	ValueChecks    int
	// Failures lists every divergence found (first per structure/engine;
	// a diverged component is not re-checked on later batches, so one
	// root cause yields one failure, not a cascade).
	Failures []Failure
}

// OK reports whether the run found no divergence.
func (r *Report) OK() bool { return len(r.Failures) == 0 }

// Run generates the stream for cfg and replays it differentially.
func Run(cfg Config) *Report { return Replay(cfg, NewStream(cfg.Stream)) }

// engineKey identifies one engine within a structure's engine set.
type engineKey struct {
	alg   string
	model compute.Model
}

// Replay replays an explicit stream differentially: after every step it
// compares each structure's full topology against the oracle, then runs
// every selected (algorithm, model) engine on the structure and compares
// its property vector against the sequential reference computed on the
// oracle. A structure or engine that diverges is reported once and
// excluded from further checking.
func Replay(cfg Config, stream Stream) *Report {
	cfg = cfg.withDefaults()
	rep := &Report{Batches: len(stream), Structures: cfg.Structures}
	oracle := graph.NewOracle(cfg.Stream.Directed)

	type instance struct {
		name    string
		g       ds.Graph
		view    *ds.ComputeView
		engines map[engineKey]compute.Engine
		dead    bool
	}
	var instances []*instance
	for _, name := range cfg.Structures {
		g, err := cfg.makeStructure(name)
		if err != nil {
			rep.Failures = append(rep.Failures, Failure{
				DS: name, Kind: "topology", Batch: -1,
				Detail: fmt.Sprintf("construction failed: %v", err),
			})
			continue
		}
		inst := &instance{name: name, g: g, engines: map[engineKey]compute.Engine{}}
		if cfg.ComputeView {
			inst.view, _ = ds.NewComputeView(g, cfg.Threads)
		}
		if !cfg.TopologyOnly {
			for _, alg := range cfg.Algorithms {
				for _, model := range cfg.Models {
					inst.engines[engineKey{alg, model}] = compute.MustNewEngine(alg, model, cfg.Opts)
				}
			}
		}
		instances = append(instances, inst)
	}

	refs := map[string][]float64{}
	var affected []graph.NodeID
	affSeen := map[graph.NodeID]bool{}

	for bi, step := range stream {
		oracle.Update(step.Adds)
		oracle.Delete(step.Dels)

		// Sequential references, computed once per step and shared by
		// every structure (the oracle is the same for all of them).
		if !cfg.TopologyOnly {
			for _, alg := range cfg.Algorithms {
				refs[alg] = compute.MustReference(alg, oracle, cfg.Opts)
			}
		}

		// The affected set of Algorithm 1: deduplicated endpoints of the
		// step's adds and deletes, as core.Pipeline computes it.
		affected = affected[:0]
		clear(affSeen)
		for _, b := range []graph.Batch{step.Adds, step.Dels} {
			for _, e := range b {
				for _, v := range [2]graph.NodeID{e.Src, e.Dst} {
					if !affSeen[v] && int(v) < oracle.NumNodes() {
						affSeen[v] = true
						affected = append(affected, v)
					}
				}
			}
		}

		for _, inst := range instances {
			if inst.dead {
				continue
			}
			// Pre-update overwrite scan, as core.Pipeline performs it: the
			// monotone weighted engines must be told about edges whose
			// stored weight this step rewrites (old weights disappear once
			// Update runs).
			var olds graph.Batch
			for _, key := range sortedKeys(inst.engines) {
				if wca, ok := inst.engines[key].(compute.WeightChangeAware); ok && wca.WantsWeightChanges() {
					olds = ds.Overwritten(inst.g, step.Adds)
					break
				}
			}
			inst.g.Update(step.Adds)
			if len(step.Dels) > 0 {
				if err := inst.g.(ds.Deleter).Delete(step.Dels); err != nil {
					rep.Failures = append(rep.Failures, Failure{
						DS: inst.name, Kind: "topology", Batch: bi,
						Detail: fmt.Sprintf("delete failed: %v", err),
					})
					inst.dead = true
					continue
				}
			}

			rep.TopologyChecks++
			if diffs := ds.DiffOracle(inst.g, oracle, cfg.MaxDiffs); len(diffs) != 0 {
				rep.Failures = append(rep.Failures, Failure{
					DS: inst.name, Kind: "topology", Batch: bi,
					Detail: joinDiffs(diffs),
				})
				inst.dead = true
				if cfg.StopAtFirst {
					return rep
				}
				continue
			}

			// The compute graph the engines see: the refreshed mirror when
			// one is attached, whose topology is independently diffed — an
			// incremental-rebuild bug shows up here as a topology failure
			// even if no engine reads the stale run.
			cg := inst.g
			if inst.view != nil {
				inst.view.Refresh(step.Adds, step.Dels)
				cg = inst.view
				rep.TopologyChecks++
				if diffs := ds.DiffOracle(inst.view, oracle, cfg.MaxDiffs); len(diffs) != 0 {
					rep.Failures = append(rep.Failures, Failure{
						DS: inst.name, Kind: "topology", Batch: bi,
						Detail: "compute view: " + joinDiffs(diffs),
					})
					inst.dead = true
					if cfg.StopAtFirst {
						return rep
					}
					continue
				}
			}

			for _, key := range sortedKeys(inst.engines) {
				e := inst.engines[key]
				if e == nil {
					continue // diverged earlier
				}
				invalidating := step.Dels
				if wca, ok := e.(compute.WeightChangeAware); ok && wca.WantsWeightChanges() && len(olds) > 0 {
					invalidating = append(append(graph.Batch{}, olds...), step.Dels...)
				}
				if len(invalidating) > 0 {
					if da, ok := e.(compute.DeletionAware); ok {
						da.NotifyDeletions(cg, invalidating)
					}
				}
				e.PerformAlg(cg, affected)
				rep.ValueChecks++
				tol := compute.Tolerance(key.alg)
				got, want := e.Values(), refs[key.alg]
				if v := compute.DiffValues(got, want, tol); v >= 0 {
					rep.Failures = append(rep.Failures, Failure{
						DS: inst.name, Kind: "values", Alg: key.alg, Model: key.model, Batch: bi,
						Detail: diffDetail(got, want, v),
					})
					inst.engines[key] = nil
					if cfg.StopAtFirst {
						return rep
					}
				}
			}
		}
	}
	return rep
}

func sortedKeys(m map[engineKey]compute.Engine) []engineKey {
	keys := make([]engineKey, 0, len(m))
	// saga:allow determinism -- order is re-established by the sort below.
	for k := range m {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].alg != keys[j].alg {
			return keys[i].alg < keys[j].alg
		}
		return keys[i].model < keys[j].model
	})
	return keys
}

func joinDiffs(diffs []string) string {
	out := ""
	for i, d := range diffs {
		if i > 0 {
			out += "; "
		}
		out += d
	}
	return out
}

func diffDetail(got, want []float64, v int) string {
	g, w := "?", "?"
	if v < len(got) {
		g = fmt.Sprintf("%v", got[v])
	}
	if v < len(want) {
		w = fmt.Sprintf("%v", want[v])
	}
	return fmt.Sprintf("vertex %d: got %s want %s (lens %d/%d)", v, g, w, len(got), len(want))
}
