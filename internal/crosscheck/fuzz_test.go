package crosscheck

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzParseRepro checks the repro parser never panics on arbitrary input
// and that everything it accepts survives a Write/Parse round trip — the
// property `sagafuzz -replay` depends on for files it did not write
// itself.
func FuzzParseRepro(f *testing.F) {
	f.Add("sagafuzz repro v1\nds stinger\nbatch\nadd 0 1 2\n")
	f.Add("sagafuzz repro v1\n# note\ndirected true\nthreads 4\nds dah\nalg sswp\nmodel inc\nsource 3\nbatch\nadd 0 1 5\ndel 0 1 5\nbatch\n")
	f.Add("sagafuzz repro v1\nds x\nbatch\nadd 4294967295 0 0.5\n")
	f.Add("not a repro")
	f.Add("")
	f.Add("sagafuzz repro v1\nds a\nbatch\nadd 1 2\n")
	f.Add("sagafuzz repro v1\nbatch\nadd 0 0 1\nds late\n")
	f.Fuzz(func(t *testing.T, input string) {
		r, err := ParseRepro(strings.NewReader(input))
		if err != nil {
			return // rejection is fine; panics are not
		}
		var buf bytes.Buffer
		if err := r.Write(&buf); err != nil {
			t.Fatalf("Write of accepted repro failed: %v", err)
		}
		back, err := ParseRepro(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("re-parse of Write output failed: %v\n%s", err, buf.Bytes())
		}
		if back.DS != r.DS || back.Alg != r.Alg || back.Model != r.Model ||
			back.Directed != r.Directed || back.Threads != r.Threads || back.Source != r.Source {
			t.Fatalf("round trip changed header: %+v -> %+v", r, back)
		}
		if len(back.Stream) != len(r.Stream) {
			t.Fatalf("round trip changed stream length %d -> %d", len(r.Stream), len(back.Stream))
		}
		for i := range r.Stream {
			if len(back.Stream[i].Adds) != len(r.Stream[i].Adds) || len(back.Stream[i].Dels) != len(r.Stream[i].Dels) {
				t.Fatalf("round trip changed step %d sizes", i)
			}
		}
	})
}

// FuzzNewStream drives the stream generator across its parameter space and
// checks the harness's load-bearing semantic invariant: every delete
// record carries the weight the edge was live with (the trim's tightness
// test silently under-invalidates otherwise). It used to also regenerate
// each stream twice and compare them element-by-element; that
// same-config-same-stream assertion is now enforced statically — the
// package is saga:deterministic, so sagavet's determinism analyzer
// rejects wall-clock reads, unseeded randomness, and map-ordered
// iteration at build time (see internal/analysis).
func FuzzNewStream(f *testing.F) {
	f.Add(int64(1), 10, 100, 64, true, true)
	f.Add(int64(99), 3, 7, 5, false, true)
	f.Add(int64(-4), 1, 0, 1, true, false)
	f.Fuzz(func(t *testing.T, seed int64, batches, batchSize, numNodes int, directed, deletes bool) {
		cfg := StreamConfig{
			Seed:      seed,
			Batches:   batches%40 + 1,
			BatchSize: batchSize % 600,
			NumNodes:  numNodes%200 + 2,
			Directed:  directed,
			Deletes:   deletes,
		}
		if cfg.BatchSize < 0 {
			cfg.BatchSize = -cfg.BatchSize
		}
		if cfg.Batches < 0 {
			cfg.Batches = -cfg.Batches + 1
		}
		if cfg.NumNodes < 2 {
			cfg.NumNodes = 2
		}
		s1 := NewStream(cfg)
		type pair struct{ src, dst uint32 }
		live := map[pair]float32{}
		key := func(src, dst uint32) pair {
			if !cfg.Directed && src > dst {
				src, dst = dst, src
			}
			return pair{src, dst}
		}
		for i := range s1 {
			for _, e := range s1[i].Adds {
				live[key(uint32(e.Src), uint32(e.Dst))] = float32(e.Weight)
			}
			for _, e := range s1[i].Dels {
				k := key(uint32(e.Src), uint32(e.Dst))
				if w, ok := live[k]; ok {
					if w != float32(e.Weight) {
						t.Fatalf("step %d: delete of (%d,%d) carries weight %v, live weight is %v", i, e.Src, e.Dst, e.Weight, w)
					}
					delete(live, k)
				}
			}
		}
	})
}
