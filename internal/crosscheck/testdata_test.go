package crosscheck_test

import (
	"path/filepath"
	"testing"

	"sagabench/internal/crosscheck"
	_ "sagabench/internal/ds/all"
)

// The repro files under testdata/ are minimized streams that once
// reproduced real incremental-model bugs (see internal/core's regression
// tests for the fixes). They document the bugs in replayable form and
// guard against reintroduction: each must parse and replay clean.
func TestCheckedInReprosReplayClean(t *testing.T) {
	paths, err := filepath.Glob(filepath.Join("testdata", "*.repro"))
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) == 0 {
		t.Fatal("no checked-in repros found")
	}
	for _, path := range paths {
		path := path
		t.Run(filepath.Base(path), func(t *testing.T) {
			r, err := crosscheck.ReadReproFile(path)
			if err != nil {
				t.Fatal(err)
			}
			if rep := r.Replay(nil); !rep.OK() {
				t.Fatalf("repro still fails:\n%s", rep.Failures[0])
			}
		})
	}
}
