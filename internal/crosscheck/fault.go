package crosscheck

import (
	"sagabench/internal/ds"
	"sagabench/internal/graph"
)

// Deliberate fault injection: the harness's own self-test wraps a correct
// data structure with a known defect and asserts the differential run
// catches it and shrinks the failing stream to a minimal repro. The
// faults mimic real concurrent-structure bugs: a swallowed insert, an
// off-by-one capacity boundary that silently drops the edge that would
// not fit, and a re-insert path that forgets to overwrite the weight.

// Fault selects a defect for InjectFault.
type Fault string

// The supported defects.
const (
	// FaultDropEdge silently ignores inserts of one specific (src, dst)
	// pair — a lost update.
	FaultDropEdge Fault = "drop-edge"
	// FaultDegreeCap drops inserts that would grow a vertex's out-degree
	// past K — the classic off-by-one at a block/bucket capacity
	// boundary (an edge that should land in slot K never lands).
	FaultDegreeCap Fault = "degree-cap"
	// FaultStaleWeight ignores the new weight when re-inserting an
	// existing edge — the overwrite path silently degrades to a no-op.
	FaultStaleWeight Fault = "stale-weight"
)

// FaultSpec parameterizes a fault.
type FaultSpec struct {
	Fault Fault
	// Src/Dst select the pair for FaultDropEdge.
	Src, Dst graph.NodeID
	// Cap is the degree boundary for FaultDegreeCap (default 16).
	Cap int
}

// InjectFault wraps inner with the described defect. The wrapper still
// implements ds.Deleter when inner does, so mixed streams replay
// normally.
func InjectFault(inner ds.Graph, spec FaultSpec) ds.Graph {
	if spec.Cap <= 0 {
		spec.Cap = 16
	}
	return &faultyGraph{Graph: inner, spec: spec}
}

type faultyGraph struct {
	ds.Graph
	spec FaultSpec
}

// Update filters the batch through the defect before handing it to the
// real structure.
func (f *faultyGraph) Update(batch graph.Batch) {
	kept := make(graph.Batch, 0, len(batch))
	for _, e := range batch {
		switch f.spec.Fault {
		case FaultDropEdge:
			if e.Src == f.spec.Src && e.Dst == f.spec.Dst {
				continue
			}
		case FaultDegreeCap:
			// Degree check against the live structure: once a source is
			// at the cap, new distinct neighbors are silently dropped
			// (overwrites of existing neighbors still pass).
			if f.Graph.OutDegree(e.Src) >= f.spec.Cap && !f.hasOut(e.Src, e.Dst) {
				continue
			}
		case FaultStaleWeight:
			if f.hasOut(e.Src, e.Dst) {
				continue // drop the overwrite: weight stays stale
			}
		}
		kept = append(kept, e)
		if f.spec.Fault == FaultDegreeCap || f.spec.Fault == FaultStaleWeight {
			// These faults consult live degrees, so same-batch edges
			// must land before judging the next one.
			f.Graph.Update(graph.Batch{e})
			kept = kept[:0]
		}
	}
	if len(kept) > 0 {
		f.Graph.Update(kept)
	}
}

func (f *faultyGraph) hasOut(src, dst graph.NodeID) bool {
	for _, nb := range f.Graph.OutNeigh(src, nil) {
		if nb.ID == dst {
			return true
		}
	}
	return false
}

// Delete passes through when the wrapped structure supports deletion.
func (f *faultyGraph) Delete(batch graph.Batch) error {
	return f.Graph.(ds.Deleter).Delete(batch)
}
