package durable

import (
	"errors"
	"fmt"
	"os"
	"syscall"
)

// Error classification: the retry layer distinguishes faults worth
// re-attempting (a flaky controller returning EIO, an interrupted
// syscall, a torn write the WAL can self-repair) from faults that no
// amount of retrying fixes (a full disk, a filesystem remounted
// read-only, revoked permissions). Transient errors are retried with
// bounded exponential backoff; permanent errors surface immediately so
// the pipeline can degrade instead of burning its retry budget.

// permanentErrnos are the conditions retrying cannot fix.
var permanentErrnos = []error{
	syscall.ENOSPC, // disk full
	syscall.EROFS,  // filesystem went read-only
	syscall.ENODEV, // device disappeared
	syscall.ENXIO,  // device not configured
	syscall.EMFILE, // fd table exhausted — retry loops make it worse
	syscall.ENFILE,
}

// Permanent reports whether err is a permanent failure: retrying the
// operation cannot succeed until an operator intervenes. Everything not
// recognizably permanent is treated as transient — misclassifying a
// permanent fault as transient costs a bounded retry budget, while the
// reverse would give up on a recoverable operation.
//
// saga:classifier
func Permanent(err error) bool {
	if err == nil {
		return false
	}
	for _, errno := range permanentErrnos {
		if errors.Is(err, errno) {
			return true
		}
	}
	return errors.Is(err, os.ErrPermission) || errors.Is(err, os.ErrNotExist)
}

// OpError wraps the final error of a retried durability operation with
// what the retry layer learned: which unit failed, how many attempts were
// spent, and the classification. The supervisor keys its degrade decision
// on this type — any OpError means the durability layer could not
// complete an operation even with retries.
type OpError struct {
	// Op names the retried unit ("wal-append", "wal-fsync", "ckpt-write",
	// "ckpt-rename", ...).
	Op string
	// Attempts is the number of attempts spent (1 = failed immediately on
	// a permanent error).
	Attempts int
	// Permanent records the classification of Err: true means retrying
	// was pointless, false means the retry budget ran out on a transient
	// fault.
	Permanent bool
	// Err is the last underlying error.
	Err error
}

func (e *OpError) Error() string {
	class := "transient"
	if e.Permanent {
		class = "permanent"
	}
	return fmt.Sprintf("durable: %s failed (%s, %d attempt(s)): %v", e.Op, class, e.Attempts, e.Err)
}

// Unwrap exposes the underlying error for errors.Is/As classification.
func (e *OpError) Unwrap() error { return e.Err }

// IsPermanent reports whether err represents a permanent durability
// failure: an OpError carrying its classification, or a bare error that
// classifies permanent.
//
// saga:classifier
func IsPermanent(err error) bool {
	var oe *OpError
	if errors.As(err, &oe) {
		return oe.Permanent
	}
	return Permanent(err)
}
