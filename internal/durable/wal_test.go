package durable

import (
	"os"
	"reflect"
	"testing"

	"sagabench/internal/graph"
)

func testCfg(dir string, pol FsyncPolicy) Config {
	return Config{Dir: dir, Fsync: pol}.withDefaults()
}

func mkBatch(base, n int) graph.Batch {
	b := make(graph.Batch, n)
	for i := range b {
		b[i] = graph.Edge{
			Src:    graph.NodeID(base + i),
			Dst:    graph.NodeID(base + i + 1),
			Weight: graph.Weight(float32(i) + 0.5),
		}
	}
	return b
}

var policies = []FsyncPolicy{FsyncAlways, FsyncInterval, FsyncNever}

func TestRecordRoundtrip(t *testing.T) {
	recs := []Record{
		{Seq: 1, Adds: mkBatch(0, 3), Dels: mkBatch(10, 2)},
		{Seq: 2},
		{Seq: 3, Skip: true},
		{Seq: 1 << 40, Adds: mkBatch(100, 1)},
	}
	var buf []byte
	for _, r := range recs {
		buf = encodeRecord(buf, r)
		got, err := decodeRecord(buf[recHeaderBytes:])
		if err != nil {
			t.Fatalf("seq %d: %v", r.Seq, err)
		}
		if !reflect.DeepEqual(got, r) {
			t.Fatalf("roundtrip: got %+v want %+v", got, r)
		}
	}
}

func TestDecodeRecordErrors(t *testing.T) {
	var buf []byte
	buf = encodeRecord(buf, Record{Seq: 1, Adds: mkBatch(0, 2)})
	payload := append([]byte(nil), buf[recHeaderBytes:]...)
	if _, err := decodeRecord(payload[:5]); err == nil {
		t.Error("short payload should fail")
	}
	if _, err := decodeRecord(payload[:len(payload)-4]); err == nil {
		t.Error("truncated body should fail")
	}
	bad := append([]byte(nil), payload...)
	bad[0] = 99
	if _, err := decodeRecord(bad); err == nil {
		t.Error("unknown kind should fail")
	}
}

// TestWALAppendLoad writes a mixed batch/skip sequence under every fsync
// policy and checks a fresh WAL reads it back verbatim.
func TestWALAppendLoad(t *testing.T) {
	for _, pol := range policies {
		t.Run(string(pol), func(t *testing.T) {
			dir := t.TempDir()
			w := openWAL(dir, testCfg(dir, pol))
			var want []Record
			for seq := uint64(1); seq <= 20; seq++ {
				r := Record{Seq: seq, Adds: mkBatch(int(seq), 3), Dels: mkBatch(int(seq)+40, 1)}
				if seq%7 == 0 {
					r = Record{Seq: seq, Skip: true}
				}
				if _, _, err := w.append(r); err != nil {
					t.Fatal(err)
				}
				want = append(want, r)
			}
			if err := w.close(); err != nil {
				t.Fatal(err)
			}
			got, err := openWAL(dir, testCfg(dir, pol)).load()
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("reload: got %d records %+v, want %d", len(got), got, len(want))
			}
		})
	}
}

// TestWALTornTail chops bytes off the final segment — a record torn at
// power loss — and checks recovery truncates to the last valid record and
// appending resumes cleanly, under every fsync policy.
func TestWALTornTail(t *testing.T) {
	for _, pol := range policies {
		t.Run(string(pol), func(t *testing.T) {
			dir := t.TempDir()
			w := openWAL(dir, testCfg(dir, pol))
			for seq := uint64(1); seq <= 10; seq++ {
				if _, _, err := w.append(Record{Seq: seq, Adds: mkBatch(int(seq), 2)}); err != nil {
					t.Fatal(err)
				}
			}
			if err := w.close(); err != nil {
				t.Fatal(err)
			}
			if n, err := TornTail(dir, 3); err != nil || n != 3 {
				t.Fatalf("TornTail removed %d bytes, err %v", n, err)
			}
			w2 := openWAL(dir, testCfg(dir, pol))
			recs, err := w2.load()
			if err != nil {
				t.Fatal(err)
			}
			if len(recs) != 9 || recs[len(recs)-1].Seq != 9 {
				t.Fatalf("after torn tail: %d records, last seq %d; want 9 ending at 9",
					len(recs), recs[len(recs)-1].Seq)
			}
			// The truncated log must accept new appends at the cut point.
			if _, _, err := w2.append(Record{Seq: 10, Adds: mkBatch(10, 2)}); err != nil {
				t.Fatal(err)
			}
			if err := w2.close(); err != nil {
				t.Fatal(err)
			}
			recs, err = openWAL(dir, testCfg(dir, pol)).load()
			if err != nil {
				t.Fatal(err)
			}
			if len(recs) != 10 || recs[9].Seq != 10 {
				t.Fatalf("after re-append: %d records, want 10", len(recs))
			}
		})
	}
}

// TestWALBitFlip corrupts one bit in the final record and checks the
// checksum catches it: the record is dropped and the log truncated there.
func TestWALBitFlip(t *testing.T) {
	for _, pol := range policies {
		t.Run(string(pol), func(t *testing.T) {
			dir := t.TempDir()
			w := openWAL(dir, testCfg(dir, pol))
			for seq := uint64(1); seq <= 5; seq++ {
				if _, _, err := w.append(Record{Seq: seq, Adds: mkBatch(int(seq), 2)}); err != nil {
					t.Fatal(err)
				}
			}
			if err := w.close(); err != nil {
				t.Fatal(err)
			}
			if ok, err := FlipTailBit(dir); err != nil || !ok {
				t.Fatalf("FlipTailBit: ok=%v err=%v", ok, err)
			}
			recs, err := openWAL(dir, testCfg(dir, pol)).load()
			if err != nil {
				t.Fatal(err)
			}
			if len(recs) != 4 || recs[3].Seq != 4 {
				t.Fatalf("after bit flip: %d records, want the 4 intact ones", len(recs))
			}
		})
	}
}

// TestWALTornMagic destroys the final segment's header below the magic
// length: recovery rewrites a clean empty segment instead of wedging.
func TestWALTornMagic(t *testing.T) {
	dir := t.TempDir()
	w := openWAL(dir, testCfg(dir, FsyncAlways))
	if _, _, err := w.append(Record{Seq: 1, Adds: mkBatch(1, 1)}); err != nil {
		t.Fatal(err)
	}
	if err := w.close(); err != nil {
		t.Fatal(err)
	}
	path, err := TailSegment(dir)
	if err != nil || path == "" {
		t.Fatalf("TailSegment: %q, %v", path, err)
	}
	if err := os.Truncate(path, 4); err != nil {
		t.Fatal(err)
	}
	w2 := openWAL(dir, testCfg(dir, FsyncAlways))
	recs, err := w2.load()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 0 {
		t.Fatalf("torn magic should empty the segment, got %d records", len(recs))
	}
	if _, _, err := w2.append(Record{Seq: 1, Adds: mkBatch(1, 1)}); err != nil {
		t.Fatal(err)
	}
	w2.close()
}

// TestWALRotationAndGC forces rotation with a tiny segment cap and checks
// gc removes exactly the segments a checkpoint covers.
func TestWALRotationAndGC(t *testing.T) {
	dir := t.TempDir()
	cfg := testCfg(dir, FsyncNever)
	cfg.SegmentBytes = 200
	w := openWAL(dir, cfg)
	for seq := uint64(1); seq <= 20; seq++ {
		if _, _, err := w.append(Record{Seq: seq, Adds: mkBatch(int(seq), 3)}); err != nil {
			t.Fatal(err)
		}
	}
	segs, err := listSegments(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) < 3 {
		t.Fatalf("expected rotation to produce several segments, got %d", len(segs))
	}
	w.gc(10)
	kept, err := listSegments(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(kept) >= len(segs) {
		t.Fatalf("gc(10) removed nothing: %d -> %d segments", len(segs), len(kept))
	}
	if err := w.close(); err != nil {
		t.Fatal(err)
	}
	recs, err := openWAL(dir, cfg).load()
	if err != nil {
		t.Fatal(err)
	}
	have := map[uint64]bool{}
	for _, r := range recs {
		have[r.Seq] = true
	}
	for seq := uint64(11); seq <= 20; seq++ {
		if !have[seq] {
			t.Fatalf("gc(10) lost record %d, which a checkpoint at 10 does not cover", seq)
		}
	}
}

// TestWALEarlierSegmentCorruption flips a bit in a non-final segment:
// that is unrecoverable corruption, not a torn tail, and must error.
func TestWALEarlierSegmentCorruption(t *testing.T) {
	dir := t.TempDir()
	cfg := testCfg(dir, FsyncNever)
	cfg.SegmentBytes = 200
	w := openWAL(dir, cfg)
	for seq := uint64(1); seq <= 12; seq++ {
		if _, _, err := w.append(Record{Seq: seq, Adds: mkBatch(int(seq), 3)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.close(); err != nil {
		t.Fatal(err)
	}
	segs, err := listSegments(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) < 2 {
		t.Fatalf("need at least 2 segments, got %d", len(segs))
	}
	data, err := os.ReadFile(segs[0].path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-2] ^= 0x10
	if err := os.WriteFile(segs[0].path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := openWAL(dir, cfg).load(); err == nil {
		t.Fatal("corruption in a non-final segment must be a hard error")
	}
}
