package durable

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"math"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"

	"sagabench/internal/compute"
	"sagabench/internal/fault"
	"sagabench/internal/graph"
)

// A checkpoint is a single self-checking snapshot file,
// checkpoint-%016d.ckpt, named by the last applied sequence number:
//
//	[8B magic "SAGACKP1"][u32 body length][u32 crc32c(body)][body]
//
// The body serializes the full adjacency (as exported canonical edges)
// plus the compute engine's cross-batch state. Files are written to a
// .tmp sibling, fsynced, and renamed into place, so a crash mid-write
// leaves either the previous checkpoint or a complete new one — never a
// half-written file that parses. Recovery takes the newest checkpoint
// whose checksum verifies and falls back to older ones otherwise.

const (
	ckptMagic  = "SAGACKP1"
	ckptSuffix = ".ckpt"
	ckptPrefix = "checkpoint-"
	ckptKeep   = 2
)

// Checkpoint is one decoded snapshot: everything needed to rebuild the
// pipeline's in-memory state at sequence Seq.
type Checkpoint struct {
	Seq      uint64
	Directed bool
	NumNodes int
	Edges    []graph.Edge
	Engine   *compute.State
}

func encodeCheckpoint(cp *Checkpoint) []byte {
	var body []byte
	body = binary.LittleEndian.AppendUint64(body, cp.Seq)
	flags := byte(0)
	if cp.Directed {
		flags |= 1
	}
	if cp.Engine != nil {
		flags |= 2
	}
	body = append(body, flags)
	body = binary.LittleEndian.AppendUint64(body, uint64(cp.NumNodes))
	body = binary.LittleEndian.AppendUint32(body, uint32(len(cp.Edges)))
	for _, e := range cp.Edges {
		body = binary.LittleEndian.AppendUint32(body, uint32(e.Src))
		body = binary.LittleEndian.AppendUint32(body, uint32(e.Dst))
		body = binary.LittleEndian.AppendUint32(body, math.Float32bits(float32(e.Weight)))
	}
	if cp.Engine != nil {
		body = binary.LittleEndian.AppendUint32(body, uint32(len(cp.Engine.Values)))
		for _, f := range cp.Engine.Values {
			body = binary.LittleEndian.AppendUint64(body, math.Float64bits(f))
		}
		body = binary.LittleEndian.AppendUint64(body, uint64(cp.Engine.LastN))
		body = binary.LittleEndian.AppendUint32(body, uint32(len(cp.Engine.Pending)))
		for _, v := range cp.Engine.Pending {
			body = binary.LittleEndian.AppendUint32(body, uint32(v))
		}
	}
	out := make([]byte, 0, len(ckptMagic)+8+len(body))
	out = append(out, ckptMagic...)
	out = binary.LittleEndian.AppendUint32(out, uint32(len(body)))
	out = binary.LittleEndian.AppendUint32(out, crc32.Checksum(body, crcTable))
	return append(out, body...)
}

func decodeCheckpoint(data []byte) (*Checkpoint, error) {
	if len(data) < len(ckptMagic)+8 || string(data[:len(ckptMagic)]) != ckptMagic {
		return nil, fmt.Errorf("durable: bad checkpoint magic")
	}
	blen := int(binary.LittleEndian.Uint32(data[len(ckptMagic) : len(ckptMagic)+4]))
	crc := binary.LittleEndian.Uint32(data[len(ckptMagic)+4 : len(ckptMagic)+8])
	body := data[len(ckptMagic)+8:]
	if len(body) != blen {
		return nil, fmt.Errorf("durable: checkpoint body %d bytes, header says %d", len(body), blen)
	}
	if crc32.Checksum(body, crcTable) != crc {
		return nil, fmt.Errorf("durable: checkpoint checksum mismatch")
	}
	need := func(n int) error {
		if len(body) < n {
			return fmt.Errorf("durable: checkpoint body truncated")
		}
		return nil
	}
	if err := need(8 + 1 + 8 + 4); err != nil {
		return nil, err
	}
	cp := &Checkpoint{Seq: binary.LittleEndian.Uint64(body[0:8])}
	flags := body[8]
	cp.Directed = flags&1 != 0
	hasEngine := flags&2 != 0
	cp.NumNodes = int(binary.LittleEndian.Uint64(body[9:17]))
	nEdges := int(binary.LittleEndian.Uint32(body[17:21]))
	body = body[21:]
	if err := need(12 * nEdges); err != nil {
		return nil, err
	}
	if nEdges > 0 {
		cp.Edges = make([]graph.Edge, nEdges)
		for i := range cp.Edges {
			cp.Edges[i] = graph.Edge{
				Src:    graph.NodeID(binary.LittleEndian.Uint32(body[0:4])),
				Dst:    graph.NodeID(binary.LittleEndian.Uint32(body[4:8])),
				Weight: graph.Weight(math.Float32frombits(binary.LittleEndian.Uint32(body[8:12]))),
			}
			body = body[12:]
		}
	}
	if hasEngine {
		if err := need(4); err != nil {
			return nil, err
		}
		nVals := int(binary.LittleEndian.Uint32(body[0:4]))
		body = body[4:]
		if err := need(8*nVals + 8 + 4); err != nil {
			return nil, err
		}
		st := &compute.State{}
		if nVals > 0 {
			st.Values = make([]float64, nVals)
			for i := range st.Values {
				st.Values[i] = math.Float64frombits(binary.LittleEndian.Uint64(body[0:8]))
				body = body[8:]
			}
		}
		st.LastN = int(binary.LittleEndian.Uint64(body[0:8]))
		nPend := int(binary.LittleEndian.Uint32(body[8:12]))
		body = body[12:]
		if err := need(4 * nPend); err != nil {
			return nil, err
		}
		if nPend > 0 {
			st.Pending = make([]graph.NodeID, nPend)
			for i := range st.Pending {
				st.Pending[i] = graph.NodeID(binary.LittleEndian.Uint32(body[0:4]))
				body = body[4:]
			}
		}
		cp.Engine = st
	}
	if len(body) != 0 {
		return nil, fmt.Errorf("durable: checkpoint has %d trailing bytes", len(body))
	}
	return cp, nil
}

func ckptPath(dir string, seq uint64) string {
	return filepath.Join(dir, fmt.Sprintf("%s%016d%s", ckptPrefix, seq, ckptSuffix))
}

// listCheckpoints returns checkpoint paths sorted newest (highest seq)
// first.
func listCheckpoints(dir string) ([]string, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	type named struct {
		path string
		seq  uint64
	}
	var cks []named
	for _, ent := range ents {
		name := ent.Name()
		if !strings.HasPrefix(name, ckptPrefix) || !strings.HasSuffix(name, ckptSuffix) {
			continue
		}
		num := strings.TrimSuffix(strings.TrimPrefix(name, ckptPrefix), ckptSuffix)
		seq, err := strconv.ParseUint(num, 10, 64)
		if err != nil {
			continue
		}
		cks = append(cks, named{path: filepath.Join(dir, name), seq: seq})
	}
	sort.Slice(cks, func(i, j int) bool { return cks[i].seq > cks[j].seq })
	paths := make([]string, len(cks))
	for i, c := range cks {
		paths[i] = c.path
	}
	return paths, nil
}

// loadLatestCheckpoint returns the newest checkpoint that decodes and
// checksums cleanly, or nil when none exists. Corrupt files are skipped
// (logged via the returned names is unnecessary — an older valid
// checkpoint plus the uncollected WAL reconstructs the same state).
func loadLatestCheckpoint(dir string) (*Checkpoint, error) {
	paths, err := listCheckpoints(dir)
	if err != nil {
		return nil, err
	}
	var lastErr error
	for _, path := range paths {
		data, err := os.ReadFile(path)
		if err != nil {
			lastErr = err
			continue
		}
		cp, err := decodeCheckpoint(data)
		if err != nil {
			lastErr = fmt.Errorf("%s: %w", path, err)
			continue
		}
		return cp, nil
	}
	if len(paths) > 0 && lastErr != nil {
		return nil, fmt.Errorf("durable: no valid checkpoint (last error: %w)", lastErr)
	}
	return nil, nil
}

// writeCheckpointFile atomically persists cp: write a .tmp sibling, fsync
// it, fire the mid-checkpoint crash hook, rename into place, fsync the
// directory. The temp write (idempotent: O_TRUNC recreates it) and the
// rename are separately retried units.
func writeCheckpointFile(dir string, cp *Checkpoint, cfg Config, retry RetryPolicy) error {
	final := ckptPath(dir, cp.Seq)
	tmp := final + ".tmp"
	data := encodeCheckpoint(cp)
	err := retry.Do("ckpt-write", func() error {
		return writeCkptTemp(tmp, data, cfg.IO)
	})
	if err != nil {
		return err
	}
	if cfg.Crash != nil {
		cfg.Crash(CrashMidCheckpoint)
	}
	err = retry.Do("ckpt-rename", func() error {
		if err := fault.Inject(cfg.IO, fault.OpCkptRename); err != nil {
			return fmt.Errorf("durable: checkpoint rename: %w", err)
		}
		return os.Rename(tmp, final)
	})
	if err != nil {
		return err
	}
	syncDir(dir)
	return nil
}

// writeCkptTemp writes and fsyncs the checkpoint temp file. O_TRUNC makes
// a retry start from a clean file, so a torn previous attempt cannot
// leak into the renamed checkpoint.
func writeCkptTemp(tmp string, data []byte, inj fault.Injector) error {
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	if err := fault.Inject(inj, fault.OpCkptWrite); err != nil {
		if errors.Is(err, fault.ErrShortWrite) {
			// Tear the temp file the way a real partial write would.
			// saga:allow errcheck-durable -- deliberately simulating a partial write; the injected error is returned.
			f.Write(data[:len(data)/2])
		}
		// saga:allow errcheck-durable -- abandoning the temp file; the injected error is returned.
		f.Close()
		return err
	}
	if _, err := f.Write(data); err != nil {
		// saga:allow errcheck-durable -- abandoning the temp file; the write error is returned.
		f.Close()
		return err
	}
	if err := fault.Inject(inj, fault.OpCkptSync); err != nil {
		// saga:allow errcheck-durable -- abandoning the temp file; the injected error is returned.
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		// saga:allow errcheck-durable -- abandoning the temp file; the sync error is returned.
		f.Close()
		return err
	}
	return f.Close()
}

// gcCheckpoints removes all but the ckptKeep newest checkpoints. Keeping
// one spare means a checkpoint that turns out corrupt on the next open
// still has a fallback.
func gcCheckpoints(dir string) {
	paths, err := listCheckpoints(dir)
	if err != nil {
		return
	}
	for _, path := range paths[min(len(paths), ckptKeep):] {
		// saga:allow errcheck-durable -- best-effort GC; a surviving old checkpoint is harmless.
		os.Remove(path)
	}
}

// removeStaleTemps deletes orphaned .tmp files left by a crash between
// temp-write and rename.
func removeStaleTemps(dir string) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return
	}
	for _, ent := range ents {
		if strings.HasSuffix(ent.Name(), ".tmp") {
			// saga:allow errcheck-durable -- best-effort cleanup; a stale temp is re-removed next open.
			os.Remove(filepath.Join(dir, ent.Name()))
		}
	}
}
