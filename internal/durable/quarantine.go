package durable

import (
	"fmt"
	"path/filepath"

	"sagabench/internal/compute"
	"sagabench/internal/crosscheck"
	"sagabench/internal/graph"
)

// PoisonMeta identifies the pipeline a poison batch was quarantined from,
// so the written repro replays against the same structure and engine.
type PoisonMeta struct {
	Directed bool
	Threads  int
	DS       string
	Alg      string
	Model    compute.Model
	Source   graph.NodeID
}

// Quarantine writes a failing batch to a replayable .poison file in the
// durability directory, using the crosscheck repro codec so
// `sagafuzz -replay` consumes it directly. seq names the file (0 for a
// batch rejected by validation before it consumed a sequence number, in
// which case n distinguishes repeated offenders). Returns the file path.
func (m *Manager) Quarantine(meta PoisonMeta, seq uint64, reason string, adds, dels graph.Batch) (string, error) {
	r := &crosscheck.Repro{
		Directed: meta.Directed,
		Threads:  meta.Threads,
		DS:       meta.DS,
		Alg:      meta.Alg,
		Model:    meta.Model,
		Source:   meta.Source,
		Note:     fmt.Sprintf("quarantined batch seq=%d: %s", seq, reason),
		Stream:   crosscheck.Stream{{Adds: adds, Dels: dels}},
	}
	path := filepath.Join(m.cfg.Dir, fmt.Sprintf("batch-%06d.poison", seq))
	if seq == 0 {
		// Validation rejects don't consume sequence numbers; avoid
		// clobbering previous rejects.
		for n := 0; ; n++ {
			path = filepath.Join(m.cfg.Dir, fmt.Sprintf("invalid-%06d.poison", n))
			if _, err := crosscheck.ReadReproFile(path); err != nil {
				break
			}
		}
	}
	if err := r.WriteFile(path); err != nil {
		return "", fmt.Errorf("durable: writing quarantine file: %w", err)
	}
	m.rec.RecordQuarantine()
	return path, nil
}
