package durable

import (
	"fmt"
	"hash/fnv"
	"time"
)

// RetryPolicy bounds the transient-error retry on WAL and checkpoint I/O:
// exponential backoff from BaseDelay, capped at MaxDelay, with a
// seed-deterministic jitter so concurrent pipelines don't retry in
// lockstep but a soak replays identically.
type RetryPolicy struct {
	// MaxAttempts is the total number of attempts per operation,
	// including the first (default 4).
	MaxAttempts int
	// BaseDelay is the backoff before the first retry, doubled per
	// attempt (default 1ms).
	BaseDelay time.Duration
	// MaxDelay caps the per-retry backoff (default 100ms).
	MaxDelay time.Duration
	// Seed drives the jitter draws (same seed → same delays).
	Seed int64
	// Sleep is the backoff implementation (default time.Sleep; tests
	// install a recording fake).
	Sleep func(time.Duration)
	// OnRetry observes each retry before its backoff: the manager hooks
	// it to count retries for telemetry and the health report.
	OnRetry func(op string, attempt int, err error)
}

func (p RetryPolicy) withDefaults() RetryPolicy {
	if p.MaxAttempts <= 0 {
		p.MaxAttempts = 4
	}
	if p.BaseDelay <= 0 {
		p.BaseDelay = time.Millisecond
	}
	if p.MaxDelay <= 0 {
		p.MaxDelay = 100 * time.Millisecond
	}
	if p.Sleep == nil {
		p.Sleep = time.Sleep
	}
	return p
}

// Do runs fn up to MaxAttempts times, backing off between attempts. A
// permanent error (see Permanent) aborts immediately. The returned error
// is always nil or an *OpError carrying the classification and attempt
// count.
//
// saga:classifies
func (p RetryPolicy) Do(op string, fn func() error) error {
	p = p.withDefaults()
	for attempt := 1; ; attempt++ {
		err := fn()
		if err == nil {
			return nil
		}
		if Permanent(err) {
			return &OpError{Op: op, Attempts: attempt, Permanent: true, Err: err}
		}
		if attempt >= p.MaxAttempts {
			return &OpError{Op: op, Attempts: attempt, Err: err}
		}
		if p.OnRetry != nil {
			p.OnRetry(op, attempt, err)
		}
		p.Sleep(p.delay(op, attempt))
	}
}

// delay is the backoff before retry number attempt: BaseDelay<<(attempt-1)
// capped at MaxDelay, plus a deterministic jitter in [0, delay/2) drawn
// from (Seed, op, attempt).
func (p RetryPolicy) delay(op string, attempt int) time.Duration {
	d := p.BaseDelay
	for i := 1; i < attempt && d < p.MaxDelay; i++ {
		d *= 2
	}
	if d > p.MaxDelay {
		d = p.MaxDelay
	}
	if half := uint64(d / 2); half > 0 {
		h := fnv.New64a()
		// saga:allow errcheck-durable -- fnv.Write cannot fail.
		fmt.Fprintf(h, "%d|%s|%d", p.Seed, op, attempt)
		d += time.Duration(h.Sum64() % half)
	}
	return d
}
