package durable

import (
	"fmt"
	"os"
)

// Disk-level fault injection for tests and the crash loop: these mutate
// the newest WAL segment the way an unclean shutdown or silent media
// corruption would, so recovery's torn-tail truncation and checksum
// verification are exercised against real files, not synthetic buffers.

// TailSegment returns the path of the newest WAL segment, or "" when the
// log is empty.
func TailSegment(dir string) (string, error) {
	segs, err := listSegments(dir)
	if err != nil {
		return "", err
	}
	if len(segs) == 0 {
		return "", nil
	}
	return segs[len(segs)-1].path, nil
}

// TornTail chops n bytes off the newest WAL segment, simulating a record
// half-written at power loss. It never cuts into the magic header.
// Returns the number of bytes actually removed.
func TornTail(dir string, n int64) (int64, error) {
	path, err := TailSegment(dir)
	if err != nil || path == "" {
		return 0, err
	}
	st, err := os.Stat(path)
	if err != nil {
		return 0, err
	}
	keep := st.Size() - n
	if keep < int64(len(walMagic)) {
		keep = int64(len(walMagic))
	}
	if keep >= st.Size() {
		return 0, nil
	}
	if err := os.Truncate(path, keep); err != nil {
		return 0, err
	}
	return st.Size() - keep, nil
}

// FlipTailBit flips one bit inside the last record of the newest WAL
// segment, simulating silent corruption that only the checksum can catch.
// Reports whether a bit was flipped (false on an empty log).
func FlipTailBit(dir string) (bool, error) {
	path, err := TailSegment(dir)
	if err != nil || path == "" {
		return false, err
	}
	data, err := os.ReadFile(path)
	if err != nil {
		return false, err
	}
	if len(data) <= len(walMagic) {
		return false, nil
	}
	// Flip a bit two bytes from the end: inside the final record's
	// payload (every record payload is ≥ 9 bytes).
	i := len(data) - 2
	data[i] ^= 0x10
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return false, fmt.Errorf("durable: rewriting %s: %w", path, err)
	}
	return true, nil
}
