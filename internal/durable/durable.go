// Package durable is the crash-safety layer of the streaming pipeline.
// The paper's driver (Fig 1/2b) assumes every batch arrives well-formed
// and the process never dies; a long-lived service holding an evolving
// graph cannot. This package provides the four pieces the core pipeline
// threads together:
//
//   - a segmented, CRC-checksummed write-ahead log for incoming batches
//     (wal.go) with a configurable fsync policy, segment rotation, and
//     torn-tail detection and truncation on open;
//   - periodic checkpoints (checkpoint.go) serializing the full adjacency
//     plus the compute engine's cross-batch state to an atomically-renamed
//     snapshot file, with WAL segments garbage-collected once covered;
//   - a Manager (manager.go) that wires the two into the recovery
//     protocol: load the newest valid checkpoint, replay the WAL tail,
//     resume mid-stream;
//   - poison-batch quarantine (quarantine.go): malformed or persistently
//     failing batches are written to a replayable .poison file (the
//     crosscheck repro codec, consumed by `sagafuzz -replay`) so the
//     stream keeps moving.
//
// A fault-injection harness is built in: CrashPoint hooks simulate kills
// at every instant of the durability protocol, and fault.go tears and
// bit-flips WAL tails the way an unclean shutdown would. The kill/recover
// soak loop over these hooks lives in internal/crashloop and behind
// `sagafuzz -crash`.
//
// saga:durable — discarded errors here are silent data loss (enforced by
// sagavet's errcheck-durable; see internal/analysis).
package durable

import (
	"fmt"
	"math"
	"time"

	"sagabench/internal/fault"
	"sagabench/internal/graph"
)

// FsyncPolicy selects when the write-ahead log is flushed to stable
// storage.
type FsyncPolicy string

const (
	// FsyncAlways fsyncs after every appended record: no acknowledged
	// batch is ever lost, at the cost of one fsync per batch.
	FsyncAlways FsyncPolicy = "always"
	// FsyncInterval fsyncs every FsyncEvery records, and on rotation and
	// close: a bounded loss window with amortized fsync cost. This is the
	// default.
	FsyncInterval FsyncPolicy = "interval"
	// FsyncNever leaves flushing to the OS: fastest, but a power failure
	// can lose the page-cache tail. Torn tails are still detected and
	// truncated on recovery, so the log never wedges.
	FsyncNever FsyncPolicy = "never"
)

// CrashPoint identifies an instant in the durability protocol where the
// fault-injection harness can simulate a kill. Hooks fire at every point;
// a hook that panics with Crash models the process dying there, leaving
// only the on-disk state for recovery.
type CrashPoint string

// The registered crash points, in protocol order.
const (
	// CrashBeforeAppend fires before a batch record is written to the WAL:
	// the batch is lost and the caller must resubmit it.
	CrashBeforeAppend CrashPoint = "before-append"
	// CrashAfterAppend fires after the record is written (and fsynced per
	// policy) but before the batch is applied in memory: recovery must
	// replay it.
	CrashAfterAppend CrashPoint = "after-append"
	// CrashMidCheckpoint fires after the checkpoint temp file is written
	// and synced but before the atomic rename: recovery must ignore the
	// orphaned temp file and use the previous checkpoint.
	CrashMidCheckpoint CrashPoint = "mid-checkpoint"
	// CrashAfterCheckpoint fires after the rename but before WAL segments
	// are garbage-collected: recovery sees overlapping checkpoint and WAL
	// coverage and must apply each batch exactly once.
	CrashAfterCheckpoint CrashPoint = "after-checkpoint"
	// CrashMidReplay fires between replayed records during recovery
	// itself: a crash during recovery must leave the log recoverable
	// again.
	CrashMidReplay CrashPoint = "mid-replay"
)

// CrashPoints lists every registered crash point in protocol order; the
// kill/recover harness iterates it.
var CrashPoints = []CrashPoint{
	CrashBeforeAppend,
	CrashAfterAppend,
	CrashMidCheckpoint,
	CrashAfterCheckpoint,
	CrashMidReplay,
}

// CrashFunc observes crash points. A production pipeline leaves it nil;
// the harness installs one that panics with Crash at scheduled points.
type CrashFunc func(CrashPoint)

// Crash is the panic value raised by a simulated kill. Drivers recover it,
// drop the in-memory pipeline, and re-open from disk — exactly what a real
// crash forces.
type Crash struct{ Point CrashPoint }

func (c Crash) Error() string { return fmt.Sprintf("durable: simulated crash at %s", c.Point) }

// CrashAt returns a CrashFunc that panics with Crash the nth time point
// fires (counting from 1). Other points pass through untouched.
func CrashAt(point CrashPoint, nth int) CrashFunc {
	n := 0
	return func(p CrashPoint) {
		if p != point {
			return
		}
		n++
		if n == nth {
			panic(Crash{Point: point})
		}
	}
}

// AsCrash reports whether a recovered panic value is a simulated crash.
// The pipeline's panic-recovery wrappers re-raise these instead of
// treating them as poison batches.
func AsCrash(v any) (Crash, bool) {
	c, ok := v.(Crash)
	return c, ok
}

// Config tunes the durability layer. The zero Dir is invalid; every other
// zero value selects a sensible default (see withDefaults).
type Config struct {
	// Dir holds the WAL segments, checkpoints, and quarantined batches.
	// Created if missing.
	Dir string
	// Fsync is the WAL flush policy (default FsyncInterval).
	Fsync FsyncPolicy
	// FsyncEvery is the FsyncInterval period in records (default 8).
	FsyncEvery int
	// SegmentBytes rotates the active WAL segment past this size
	// (default 1 MiB).
	SegmentBytes int64
	// CheckpointEvery writes a checkpoint every N applied batches
	// (default 64; negative disables periodic checkpoints — a final one
	// is still written on Close).
	CheckpointEvery int
	// MaxRetries re-attempts a failing batch apply before quarantining it
	// (default 2).
	MaxRetries int
	// RetryBackoff is the initial backoff between retries, doubled per
	// attempt (default 1ms).
	RetryBackoff time.Duration
	// MaxNodeID rejects batches naming vertices above this bound during
	// validation; 0 disables the bound.
	MaxNodeID graph.NodeID
	// Crash is the fault-injection hook (nil in production).
	Crash CrashFunc
	// IO is consulted before every WAL and checkpoint I/O operation; an
	// injected error is handled exactly like the operation failing (nil
	// in production). See internal/fault.
	IO fault.Injector
	// Retry bounds the transient-error retry on WAL appends, fsyncs, and
	// checkpoint writes (zero values select the RetryPolicy defaults).
	Retry RetryPolicy
	// ApplyProbe, when set, runs before each batch apply (live and during
	// replay) and fails the apply when it returns an error — the harness
	// uses it to simulate poison batches that pass validation but break
	// the update or compute phase.
	ApplyProbe func(seq uint64, adds, dels graph.Batch) error
}

func (c Config) withDefaults() Config {
	if c.Fsync == "" {
		c.Fsync = FsyncInterval
	}
	if c.FsyncEvery <= 0 {
		c.FsyncEvery = 8
	}
	if c.SegmentBytes <= 0 {
		c.SegmentBytes = 1 << 20
	}
	if c.CheckpointEvery == 0 {
		c.CheckpointEvery = 64
	}
	if c.MaxRetries <= 0 {
		c.MaxRetries = 2
	}
	if c.RetryBackoff <= 0 {
		c.RetryBackoff = time.Millisecond
	}
	return c
}

func (c Config) validate() error {
	if c.Dir == "" {
		return fmt.Errorf("durable: Config.Dir is required")
	}
	switch c.Fsync {
	case FsyncAlways, FsyncInterval, FsyncNever:
	default:
		return fmt.Errorf("durable: unknown fsync policy %q (have %q, %q, %q)",
			c.Fsync, FsyncAlways, FsyncInterval, FsyncNever)
	}
	return nil
}

// ValidateBatch is the poison gate run before a batch touches the WAL or
// the graph: non-finite or negative weights and (when maxNode is set)
// out-of-bound vertex IDs are rejected. A rejected batch is quarantined
// without consuming a sequence number.
func ValidateBatch(adds, dels graph.Batch, maxNode graph.NodeID) error {
	check := func(kind string, b graph.Batch) error {
		for i, e := range b {
			w := float64(e.Weight)
			if math.IsNaN(w) {
				return fmt.Errorf("durable: %s[%d] (%d->%d): NaN weight", kind, i, e.Src, e.Dst)
			}
			if math.IsInf(w, 0) {
				return fmt.Errorf("durable: %s[%d] (%d->%d): infinite weight", kind, i, e.Src, e.Dst)
			}
			if w < 0 {
				return fmt.Errorf("durable: %s[%d] (%d->%d): negative weight %v", kind, i, e.Src, e.Dst, w)
			}
			if maxNode > 0 && (e.Src > maxNode || e.Dst > maxNode) {
				return fmt.Errorf("durable: %s[%d] (%d->%d): vertex beyond MaxNodeID %d", kind, i, e.Src, e.Dst, maxNode)
			}
		}
		return nil
	}
	if err := check("add", adds); err != nil {
		return err
	}
	return check("del", dels)
}
