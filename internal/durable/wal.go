package durable

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"time"

	"sagabench/internal/fault"
	"sagabench/internal/graph"
)

// The write-ahead log is a sequence of segment files, each named by the
// sequence number of its first record (wal-%016d.seg). A segment is an
// 8-byte magic header followed by length-prefixed, CRC-checksummed
// records:
//
//	[u32 payload length][u32 crc32c(payload)][payload]
//
// payload: [u8 kind][u64 seq] + kind-specific body. Batch records carry
// [u32 nAdds][u32 nDels] then (u32 src, u32 dst, u32 float32-bits weight)
// triples; skip records (quarantine tombstones) carry nothing more.
//
// On open every segment is scanned and checksummed. An invalid record in
// the final segment is a torn tail — the file is truncated at the last
// valid record and appending resumes there. An invalid record in an
// earlier segment is unrecoverable corruption and surfaces as an error.

const (
	walMagic       = "SAGAWAL1"
	walSuffix      = ".seg"
	walPrefix      = "wal-"
	recKindBatch   = 1
	recKindSkip    = 2
	recHeaderBytes = 8
	maxRecordBytes = 1 << 28
)

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// Record is one WAL entry: a durably logged batch, or a skip tombstone
// marking a quarantined sequence number that recovery must not replay.
type Record struct {
	Seq  uint64
	Skip bool
	Adds graph.Batch
	Dels graph.Batch
}

func encodeRecord(buf []byte, r Record) []byte {
	kind := byte(recKindBatch)
	if r.Skip {
		kind = recKindSkip
	}
	payloadLen := 1 + 8
	if !r.Skip {
		payloadLen += 4 + 4 + 12*(len(r.Adds)+len(r.Dels))
	}
	buf = buf[:0]
	buf = binary.LittleEndian.AppendUint32(buf, uint32(payloadLen))
	buf = append(buf, 0, 0, 0, 0) // crc placeholder
	buf = append(buf, kind)
	buf = binary.LittleEndian.AppendUint64(buf, r.Seq)
	if !r.Skip {
		buf = binary.LittleEndian.AppendUint32(buf, uint32(len(r.Adds)))
		buf = binary.LittleEndian.AppendUint32(buf, uint32(len(r.Dels)))
		for _, b := range [2]graph.Batch{r.Adds, r.Dels} {
			for _, e := range b {
				buf = binary.LittleEndian.AppendUint32(buf, uint32(e.Src))
				buf = binary.LittleEndian.AppendUint32(buf, uint32(e.Dst))
				buf = binary.LittleEndian.AppendUint32(buf, math.Float32bits(float32(e.Weight)))
			}
		}
	}
	crc := crc32.Checksum(buf[recHeaderBytes:], crcTable)
	binary.LittleEndian.PutUint32(buf[4:8], crc)
	return buf
}

func decodeRecord(payload []byte) (Record, error) {
	var r Record
	if len(payload) < 9 {
		return r, fmt.Errorf("durable: record payload too short (%d bytes)", len(payload))
	}
	kind := payload[0]
	r.Seq = binary.LittleEndian.Uint64(payload[1:9])
	rest := payload[9:]
	switch kind {
	case recKindSkip:
		r.Skip = true
		if len(rest) != 0 {
			return r, fmt.Errorf("durable: skip record with %d trailing bytes", len(rest))
		}
		return r, nil
	case recKindBatch:
		if len(rest) < 8 {
			return r, fmt.Errorf("durable: batch record header truncated")
		}
		nAdds := int(binary.LittleEndian.Uint32(rest[0:4]))
		nDels := int(binary.LittleEndian.Uint32(rest[4:8]))
		rest = rest[8:]
		if len(rest) != 12*(nAdds+nDels) {
			return r, fmt.Errorf("durable: batch record body %d bytes, want %d", len(rest), 12*(nAdds+nDels))
		}
		decode := func(n int) graph.Batch {
			if n == 0 {
				return nil
			}
			b := make(graph.Batch, n)
			for i := range b {
				b[i] = graph.Edge{
					Src:    graph.NodeID(binary.LittleEndian.Uint32(rest[0:4])),
					Dst:    graph.NodeID(binary.LittleEndian.Uint32(rest[4:8])),
					Weight: graph.Weight(math.Float32frombits(binary.LittleEndian.Uint32(rest[8:12]))),
				}
				rest = rest[12:]
			}
			return b
		}
		r.Adds = decode(nAdds)
		r.Dels = decode(nDels)
		return r, nil
	default:
		return r, fmt.Errorf("durable: unknown record kind %d", kind)
	}
}

type walSeg struct {
	path  string
	first uint64
}

// wal owns the segment files of one durability directory.
type wal struct {
	dir string
	cfg Config

	segs     []walSeg // sorted by first seq; last is the active segment
	f        *os.File // open active segment, nil until first append
	size     int64    // active segment size, including any torn bytes
	goodSize int64    // size up to the last fully written record
	pending  int      // appends since last fsync (FsyncInterval)
	buf      []byte   // encode scratch
}

func openWAL(dir string, cfg Config) *wal {
	return &wal{dir: dir, cfg: cfg}
}

func segPath(dir string, first uint64) string {
	return filepath.Join(dir, fmt.Sprintf("%s%016d%s", walPrefix, first, walSuffix))
}

// listSegments scans dir for WAL segments sorted by first sequence number.
func listSegments(dir string) ([]walSeg, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var segs []walSeg
	for _, ent := range ents {
		name := ent.Name()
		if !strings.HasPrefix(name, walPrefix) || !strings.HasSuffix(name, walSuffix) {
			continue
		}
		num := strings.TrimSuffix(strings.TrimPrefix(name, walPrefix), walSuffix)
		first, err := strconv.ParseUint(num, 10, 64)
		if err != nil {
			continue // not ours
		}
		segs = append(segs, walSeg{path: filepath.Join(dir, name), first: first})
	}
	sort.Slice(segs, func(i, j int) bool { return segs[i].first < segs[j].first })
	return segs, nil
}

// load (re)scans every segment from disk, truncating a torn tail in the
// final segment, and returns all valid records in order. It is called on
// every recovery, including mid-stream rebuilds after quarantine.
func (w *wal) load() ([]Record, error) {
	if w.f != nil {
		err := w.f.Close()
		w.f = nil
		if err != nil {
			// A failed close can mean buffered appends never reached the
			// file; rescanning would silently truncate them as a torn
			// tail. Surface it instead.
			return nil, fmt.Errorf("durable: closing wal segment before rescan: %w", err)
		}
	}
	segs, err := listSegments(w.dir)
	if err != nil {
		return nil, err
	}
	w.segs = segs
	var all []Record
	for i, seg := range segs {
		last := i == len(segs)-1
		recs, err := readSegment(seg.path, last)
		if err != nil {
			return nil, err
		}
		all = append(all, recs...)
	}
	return all, nil
}

// readSegment scans one segment. In the last segment, the first invalid
// record is treated as a torn tail: the file is truncated there and the
// scan stops cleanly. Anywhere else it is corruption and errors out.
func readSegment(path string, last bool) ([]Record, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	if len(data) < len(walMagic) || string(data[:len(walMagic)]) != walMagic {
		if last {
			// A header torn mid-write: rewrite a clean empty segment.
			if err := os.WriteFile(path, []byte(walMagic), 0o644); err != nil {
				return nil, err
			}
			return nil, nil
		}
		return nil, fmt.Errorf("durable: %s: bad WAL magic", path)
	}
	var recs []Record
	off := len(walMagic)
	for off < len(data) {
		bad := func(why string) ([]Record, error) {
			if last {
				if err := os.Truncate(path, int64(off)); err != nil {
					return nil, err
				}
				return recs, nil
			}
			return nil, fmt.Errorf("durable: %s: offset %d: %s", path, off, why)
		}
		if len(data)-off < recHeaderBytes {
			return bad("torn record header")
		}
		plen := int(binary.LittleEndian.Uint32(data[off : off+4]))
		crc := binary.LittleEndian.Uint32(data[off+4 : off+8])
		if plen > maxRecordBytes {
			return bad(fmt.Sprintf("implausible record length %d", plen))
		}
		if len(data)-off-recHeaderBytes < plen {
			return bad("torn record payload")
		}
		payload := data[off+recHeaderBytes : off+recHeaderBytes+plen]
		if crc32.Checksum(payload, crcTable) != crc {
			return bad("checksum mismatch")
		}
		rec, err := decodeRecord(payload)
		if err != nil {
			return bad(err.Error())
		}
		recs = append(recs, rec)
		off += recHeaderBytes + plen
	}
	return recs, nil
}

// append writes one record under the fsync policy, rotating segments as
// needed. It returns the bytes written and the fsync latency (zero when
// the policy skipped the fsync). The two halves are separately retryable
// units — appendRecord and maybeSync — so a failed fsync is re-attempted
// without re-appending the record.
func (w *wal) append(r Record) (int, time.Duration, error) {
	n, err := w.appendRecord(r)
	if err != nil {
		return 0, 0, err
	}
	fsyncDur, err := w.maybeSync()
	if err != nil {
		return n, 0, err
	}
	return n, fsyncDur, nil
}

// appendRecord writes one record to the active segment, repairing any
// torn bytes a previously failed append left behind. After a successful
// write goodSize advances past the record; after a failed one size may
// exceed goodSize, and the next attempt truncates back before writing —
// so retrying an append never leaves garbage between records.
func (w *wal) appendRecord(r Record) (int, error) {
	if err := w.ensureSegment(r.Seq); err != nil {
		return 0, err
	}
	if err := w.repairTail(); err != nil {
		return 0, fmt.Errorf("durable: WAL tail repair: %w", err)
	}
	w.buf = encodeRecord(w.buf, r)
	if err := fault.Inject(w.cfg.IO, fault.OpWALAppend); err != nil {
		if errors.Is(err, fault.ErrShortWrite) {
			// Tear the record on disk the way a real partial write would,
			// so recovery and the repair path face a genuinely torn tail.
			if n, werr := w.f.Write(w.buf[:len(w.buf)/2]); werr == nil {
				w.size += int64(n)
			}
		}
		return 0, fmt.Errorf("durable: WAL append: %w", err)
	}
	n, err := w.f.Write(w.buf)
	w.size += int64(n)
	if err != nil {
		return 0, fmt.Errorf("durable: WAL append: %w", err)
	}
	w.goodSize = w.size
	w.pending++
	return len(w.buf), nil
}

// repairTail truncates torn bytes left by a failed append so the next
// record starts at the last record boundary.
func (w *wal) repairTail() error {
	if w.f == nil || w.size == w.goodSize {
		return nil
	}
	if err := w.f.Truncate(w.goodSize); err != nil {
		return err
	}
	// The active segment is not opened O_APPEND when freshly created, so
	// reposition explicitly; on O_APPEND handles the seek is harmless.
	if _, err := w.f.Seek(w.goodSize, io.SeekStart); err != nil {
		return err
	}
	w.size = w.goodSize
	return nil
}

// maybeSync flushes per the fsync policy, returning the fsync latency
// (zero when the policy skipped it).
func (w *wal) maybeSync() (time.Duration, error) {
	doSync := w.cfg.Fsync == FsyncAlways ||
		(w.cfg.Fsync == FsyncInterval && w.pending >= w.cfg.FsyncEvery)
	if !doSync {
		return 0, nil
	}
	t0 := time.Now()
	if err := w.doSync(); err != nil {
		return 0, err
	}
	return time.Since(t0), nil
}

// doSync forces the active segment to stable storage (injectable).
func (w *wal) doSync() error {
	if w.f == nil {
		return nil
	}
	if err := fault.Inject(w.cfg.IO, fault.OpWALFsync); err != nil {
		return fmt.Errorf("durable: WAL fsync: %w", err)
	}
	if err := w.f.Sync(); err != nil {
		return fmt.Errorf("durable: WAL fsync: %w", err)
	}
	w.pending = 0
	return nil
}

// ensureSegment opens the active segment for appending, creating or
// rotating as needed. nextSeq names a newly created segment.
func (w *wal) ensureSegment(nextSeq uint64) error {
	if w.f != nil && w.size >= w.cfg.SegmentBytes {
		// Rotate: the closing segment's tail must be durable before the
		// new one starts, regardless of policy (except FsyncNever).
		if w.cfg.Fsync != FsyncNever {
			if err := w.doSync(); err != nil {
				return err
			}
		}
		if err := w.f.Close(); err != nil {
			return err
		}
		w.f = nil
		w.pending = 0
	}
	if w.f != nil {
		return nil
	}
	// Re-open the newest existing segment if it has room; otherwise start
	// a fresh one named by the next sequence number.
	if n := len(w.segs); n > 0 {
		st, err := os.Stat(w.segs[n-1].path)
		if err == nil && st.Size() < w.cfg.SegmentBytes {
			f, err := os.OpenFile(w.segs[n-1].path, os.O_WRONLY|os.O_APPEND, 0o644)
			if err != nil {
				return err
			}
			w.f, w.size, w.goodSize = f, st.Size(), st.Size()
			return nil
		}
	}
	if err := fault.Inject(w.cfg.IO, fault.OpWALCreate); err != nil {
		return fmt.Errorf("durable: WAL segment create: %w", err)
	}
	path := segPath(w.dir, nextSeq)
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_EXCL, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.WriteString(walMagic); err != nil {
		// saga:allow errcheck-durable -- abandoning the just-created segment; the write error is returned.
		f.Close()
		return err
	}
	w.f, w.size, w.goodSize = f, int64(len(walMagic)), int64(len(walMagic))
	w.segs = append(w.segs, walSeg{path: path, first: nextSeq})
	syncDir(w.dir)
	return nil
}

// gc removes segments wholly covered by a checkpoint at coverSeq: segment
// i is deletable when the following segment starts at or before
// coverSeq+1 (every record recovery could need lives later). The active
// (last) segment is never removed.
func (w *wal) gc(coverSeq uint64) {
	kept := w.segs[:0]
	for i, seg := range w.segs {
		if i+1 < len(w.segs) && w.segs[i+1].first <= coverSeq+1 {
			// saga:allow errcheck-durable -- best-effort GC; a surviving covered segment is re-collected later.
			os.Remove(seg.path)
			continue
		}
		kept = append(kept, seg)
	}
	w.segs = kept
}

// sync forces the active segment to stable storage.
func (w *wal) sync() error {
	return w.doSync()
}

// close flushes (unless FsyncNever) and closes the active segment.
func (w *wal) close() error {
	if w.f == nil {
		return nil
	}
	var err error
	if w.cfg.Fsync != FsyncNever {
		err = w.doSync()
	}
	if cerr := w.f.Close(); err == nil {
		err = cerr
	}
	w.f = nil
	return err
}

// syncDir fsyncs a directory so renames and creates survive power loss;
// best-effort on platforms where directories cannot be synced.
func syncDir(dir string) {
	d, err := os.Open(dir)
	if err != nil {
		return
	}
	// saga:allow errcheck-durable -- documented best-effort: some platforms cannot sync directories.
	d.Sync()
	// saga:allow errcheck-durable -- read-only handle; nothing buffered to lose.
	d.Close()
}
