package durable

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"syscall"
	"testing"
	"time"

	"sagabench/internal/fault"
	"sagabench/internal/graph"
)

func TestClassify(t *testing.T) {
	cases := []struct {
		name      string
		err       error
		permanent bool
	}{
		{"nil", nil, false},
		{"enospc", syscall.ENOSPC, true},
		{"erofs", syscall.EROFS, true},
		{"enodev", syscall.ENODEV, true},
		{"permission", os.ErrPermission, true},
		{"not-exist", os.ErrNotExist, true},
		{"eio", syscall.EIO, false},
		{"eintr", syscall.EINTR, false},
		{"short-write", fault.ErrShortWrite, false},
		{"unknown", errors.New("controller hiccup"), false},
		{"wrapped-enospc", fmt.Errorf("durable: WAL fsync: %w",
			&fault.InjectedError{Op: fault.OpWALFsync, Kind: "enospc", Occurrence: 3, Err: syscall.ENOSPC}), true},
		{"wrapped-eio", fmt.Errorf("durable: WAL append: %w",
			&fault.InjectedError{Op: fault.OpWALAppend, Kind: "eio", Occurrence: 1, Err: syscall.EIO}), false},
	}
	for _, tc := range cases {
		if got := Permanent(tc.err); got != tc.permanent {
			t.Errorf("Permanent(%s) = %v, want %v", tc.name, got, tc.permanent)
		}
	}
}

func TestRetryTransientEventuallySucceeds(t *testing.T) {
	var slept []time.Duration
	p := RetryPolicy{
		MaxAttempts: 5,
		BaseDelay:   time.Millisecond,
		MaxDelay:    4 * time.Millisecond,
		Sleep:       func(d time.Duration) { slept = append(slept, d) },
	}
	calls := 0
	err := p.Do("wal-fsync", func() error {
		calls++
		if calls < 4 {
			return syscall.EIO
		}
		return nil
	})
	if err != nil {
		t.Fatalf("transient fault should succeed within budget: %v", err)
	}
	if calls != 4 {
		t.Fatalf("want 4 attempts, got %d", calls)
	}
	if len(slept) != 3 {
		t.Fatalf("want 3 backoffs, got %v", slept)
	}
	// Exponential with cap: bases 1ms, 2ms, 4ms; jitter adds < delay/2.
	for i, base := range []time.Duration{time.Millisecond, 2 * time.Millisecond, 4 * time.Millisecond} {
		if slept[i] < base || slept[i] >= base+base/2 {
			t.Errorf("backoff %d = %v, want in [%v, %v)", i, slept[i], base, base+base/2)
		}
	}
	// Cap: a 4th backoff would still be bounded by MaxDelay+jitter.
	if d := p.withDefaults().delay("wal-fsync", 10); d >= 4*time.Millisecond+2*time.Millisecond {
		t.Errorf("capped delay = %v, want < 6ms", d)
	}
}

func TestRetryDeterministicJitter(t *testing.T) {
	p := RetryPolicy{Seed: 42}.withDefaults()
	q := RetryPolicy{Seed: 42}.withDefaults()
	for attempt := 1; attempt <= 4; attempt++ {
		if a, b := p.delay("wal-append", attempt), q.delay("wal-append", attempt); a != b {
			t.Fatalf("same seed, attempt %d: %v vs %v", attempt, a, b)
		}
	}
	r := RetryPolicy{Seed: 43}.withDefaults()
	same := true
	for attempt := 1; attempt <= 4; attempt++ {
		if p.delay("wal-append", attempt) != r.delay("wal-append", attempt) {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds produced identical jitter at every attempt")
	}
}

func TestRetryPermanentAbortsImmediately(t *testing.T) {
	p := RetryPolicy{MaxAttempts: 5, Sleep: func(time.Duration) { t.Fatal("permanent errors must not back off") }}
	calls := 0
	err := p.Do("ckpt-write", func() error {
		calls++
		return fmt.Errorf("write: %w", syscall.ENOSPC)
	})
	if calls != 1 {
		t.Fatalf("permanent error retried %d times", calls)
	}
	var oe *OpError
	if !errors.As(err, &oe) || !oe.Permanent || oe.Attempts != 1 || oe.Op != "ckpt-write" {
		t.Fatalf("want permanent OpError after 1 attempt, got %+v (%v)", oe, err)
	}
	if !IsPermanent(err) || !errors.Is(err, syscall.ENOSPC) {
		t.Fatalf("classification lost through OpError: %v", err)
	}
}

func TestRetryBudgetExhaustion(t *testing.T) {
	p := RetryPolicy{MaxAttempts: 3, Sleep: func(time.Duration) {}}
	calls := 0
	err := p.Do("wal-append", func() error { calls++; return syscall.EIO })
	if calls != 3 {
		t.Fatalf("want 3 attempts, got %d", calls)
	}
	var oe *OpError
	if !errors.As(err, &oe) || oe.Permanent || oe.Attempts != 3 {
		t.Fatalf("want exhausted transient OpError, got %+v (%v)", oe, err)
	}
	if IsPermanent(err) {
		t.Fatal("exhausted transient budget must not classify permanent")
	}
}

// TestManagerRetriesInjectedFaults drives a manager through a schedule
// that fails one append with EIO and one fsync with a short write: both
// are transient, both retry, and the log recovers byte-perfect.
func TestManagerRetriesInjectedFaults(t *testing.T) {
	dir := t.TempDir()
	sched := fault.MustParseSchedule("eio(wal-append,2);short(wal-append,4)", 1)
	m, err := Open(Config{
		Dir:   dir,
		Fsync: FsyncAlways,
		IO:    sched,
		Retry: RetryPolicy{Sleep: func(time.Duration) {}},
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		seq, err := m.Append(mkBatch(i, 2), nil)
		if err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
		if seq != uint64(i)+1 {
			t.Fatalf("append %d got seq %d", i, seq)
		}
	}
	if m.Retries() == 0 {
		t.Fatal("injected transient faults should have counted retries")
	}
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}

	m2, err := Open(Config{Dir: dir, Fsync: FsyncAlways}, nil)
	if err != nil {
		t.Fatal(err)
	}
	_, tail, err := m2.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if len(tail) != 5 {
		t.Fatalf("recovered %d records, want 5 (torn retry bytes must not corrupt the log)", len(tail))
	}
	for i, r := range tail {
		if r.Seq != uint64(i)+1 || len(r.Adds) != 2 {
			t.Fatalf("record %d: seq %d adds %d", i, r.Seq, len(r.Adds))
		}
	}
}

// TestManagerPermanentFaultSurfaces checks an injected ENOSPC aborts the
// append with a permanent OpError and no sequence consumption, and that
// the next append (disk "freed") succeeds with the same sequence number.
func TestManagerPermanentFaultSurfaces(t *testing.T) {
	dir := t.TempDir()
	sched := fault.MustParseSchedule("enospc(wal-append,2)", 1)
	m, err := Open(Config{
		Dir:   dir,
		Fsync: FsyncAlways,
		IO:    sched,
		Retry: RetryPolicy{Sleep: func(time.Duration) {}},
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Append(mkBatch(0, 1), nil); err != nil {
		t.Fatal(err)
	}
	_, err = m.Append(mkBatch(1, 1), nil)
	if err == nil || !IsPermanent(err) {
		t.Fatalf("want permanent failure, got %v", err)
	}
	if m.LastSeq() != 1 {
		t.Fatalf("failed append consumed a sequence number: LastSeq=%d", m.LastSeq())
	}
	if seq, err := m.Append(mkBatch(1, 1), nil); err != nil || seq != 2 {
		t.Fatalf("post-fault append: seq=%d err=%v", seq, err)
	}
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestCheckpointRetriesRename checks an EIO on the checkpoint's atomic
// rename is retried and the checkpoint lands.
func TestCheckpointRetriesRename(t *testing.T) {
	dir := t.TempDir()
	sched := fault.MustParseSchedule("eio(ckpt-rename,1);eio(ckpt-sync,1)", 1)
	m, err := Open(Config{
		Dir:   dir,
		Fsync: FsyncAlways,
		IO:    sched,
		Retry: RetryPolicy{Sleep: func(time.Duration) {}},
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	cp := &Checkpoint{Seq: 3, NumNodes: 4, Edges: []graph.Edge{{Src: 0, Dst: 1, Weight: 1}}}
	if err := m.WriteCheckpoint(cp); err != nil {
		t.Fatalf("checkpoint with transient rename fault: %v", err)
	}
	got, err := loadLatestCheckpoint(dir)
	if err != nil || got == nil || got.Seq != 3 {
		t.Fatalf("checkpoint did not land: cp=%+v err=%v", got, err)
	}
	if ents, _ := filepath.Glob(filepath.Join(dir, "*.tmp")); len(ents) != 0 {
		t.Fatalf("stale temp files left behind: %v", ents)
	}
}
