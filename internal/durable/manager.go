package durable

import (
	"fmt"
	"os"
	"sync/atomic"
	"time"

	"sagabench/internal/graph"
	"sagabench/internal/telemetry"
)

// Manager owns one durability directory: the WAL, the checkpoints, and
// the quarantine files. The core pipeline drives it — Append before each
// apply, WriteCheckpoint periodically, Recover on construction — so all
// sequencing invariants (append-before-apply, checkpoint-covers-prefix)
// live in one place.
type Manager struct {
	cfg   Config
	rec   *telemetry.Recorder
	w     *wal
	retry RetryPolicy

	lastSeq uint64 // highest sequence number appended or recovered
	ckptSeq uint64 // sequence covered by the newest durable checkpoint

	retries atomic.Uint64 // I/O retry count (read by health reports concurrently)

	lastAppendBytes int           // record size of the most recent Append
	lastAppendFsync time.Duration // fsync latency of the most recent Append (0 = policy skipped)
}

// Open validates cfg, creates the directory if needed, clears stale
// checkpoint temp files, and returns a manager ready for Recover. rec may
// be nil (telemetry disabled).
func Open(cfg Config, rec *telemetry.Recorder) (*Manager, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	cfg = cfg.withDefaults()
	if err := os.MkdirAll(cfg.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("durable: %w", err)
	}
	removeStaleTemps(cfg.Dir)
	m := &Manager{cfg: cfg, rec: rec, w: openWAL(cfg.Dir, cfg)}
	m.retry = cfg.Retry.withDefaults()
	userHook := m.retry.OnRetry
	m.retry.OnRetry = func(op string, attempt int, err error) {
		m.retries.Add(1)
		m.rec.RecordDurableRetry(op)
		if userHook != nil {
			userHook(op, attempt, err)
		}
	}
	return m, nil
}

// Recover loads the newest valid checkpoint and the WAL records that
// recovery must replay on top of it: every non-skip record with a
// sequence number past the checkpoint, minus any sequence tombstoned by a
// skip record (a previously quarantined batch). It is re-callable — the
// quarantine path recovers mid-stream after appending a skip.
func (m *Manager) Recover() (*Checkpoint, []Record, error) {
	cp, err := loadLatestCheckpoint(m.cfg.Dir)
	if err != nil {
		return nil, nil, err
	}
	recs, err := m.w.load()
	if err != nil {
		return nil, nil, err
	}
	var cpSeq uint64
	if cp != nil {
		cpSeq = cp.Seq
		m.ckptSeq = cp.Seq
	}
	skipped := make(map[uint64]bool)
	for _, r := range recs {
		if r.Skip {
			skipped[r.Seq] = true
		}
	}
	var tail []Record
	last := cpSeq
	for _, r := range recs {
		if r.Seq > last {
			last = r.Seq
		}
		if r.Skip || r.Seq <= cpSeq || skipped[r.Seq] {
			continue
		}
		tail = append(tail, r)
	}
	m.lastSeq = last
	m.rec.RecordRecovery(len(tail))
	return cp, tail, nil
}

// Append durably logs a batch before it is applied, returning its
// sequence number. The crash hooks bracket the write: a kill before the
// append loses the (unacknowledged) batch, a kill after it must be
// repaired by replay. The record write and the policy fsync are retried
// as separate units — a failed fsync is re-attempted without
// re-appending the record, and a torn partial write is truncated away
// before the next attempt (wal.repairTail). Failure after retries
// surfaces as an *OpError carrying the transient/permanent
// classification the supervisor degrades on.
//
// saga:classified
func (m *Manager) Append(adds, dels graph.Batch) (uint64, error) {
	if m.cfg.Crash != nil {
		m.cfg.Crash(CrashBeforeAppend)
	}
	seq := m.lastSeq + 1
	var n int
	err := m.retry.Do("wal-append", func() error {
		var aerr error
		n, aerr = m.w.appendRecord(Record{Seq: seq, Adds: adds, Dels: dels})
		return aerr
	})
	if err != nil {
		return 0, err
	}
	var fsync time.Duration
	err = m.retry.Do("wal-fsync", func() error {
		var serr error
		fsync, serr = m.w.maybeSync()
		return serr
	})
	if err != nil {
		return 0, err
	}
	m.lastSeq = seq
	m.lastAppendBytes, m.lastAppendFsync = n, fsync
	m.rec.RecordWALAppend(n, fsync)
	if m.cfg.Crash != nil {
		m.cfg.Crash(CrashAfterAppend)
	}
	return seq, nil
}

// LastAppendStats reports the record size and fsync latency of the most
// recent Append (fsync 0 when the policy skipped it) — the batch tracer
// stamps these on its wal.append span.
func (m *Manager) LastAppendStats() (bytes int, fsync time.Duration) {
	return m.lastAppendBytes, m.lastAppendFsync
}

// AppendSkip tombstones seq in the log: recovery will never replay it
// again. Written (and fsynced — a lost tombstone would resurrect the
// poison batch) when a logged batch is quarantined.
//
// saga:classified
func (m *Manager) AppendSkip(seq uint64) error {
	err := m.retry.Do("wal-append", func() error {
		_, aerr := m.w.appendRecord(Record{Seq: seq, Skip: true})
		return aerr
	})
	if err != nil {
		return err
	}
	return m.retry.Do("wal-fsync", m.w.sync)
}

// WriteCheckpoint atomically persists cp and garbage-collects the WAL
// segments and older checkpoints it covers.
//
// saga:classified
func (m *Manager) WriteCheckpoint(cp *Checkpoint) error {
	if err := writeCheckpointFile(m.cfg.Dir, cp, m.cfg, m.retry); err != nil {
		return err
	}
	m.ckptSeq = cp.Seq
	m.rec.RecordCheckpoint()
	if m.cfg.Crash != nil {
		m.cfg.Crash(CrashAfterCheckpoint)
	}
	m.w.gc(cp.Seq)
	gcCheckpoints(m.cfg.Dir)
	return nil
}

// LastSeq is the highest sequence number appended or recovered.
func (m *Manager) LastSeq() uint64 { return m.lastSeq }

// Retries is the total number of I/O retries spent so far (WAL appends,
// fsyncs, and checkpoint writes together). Safe to read concurrently —
// health reports poll it.
func (m *Manager) Retries() uint64 { return m.retries.Load() }

// CheckpointSeq is the sequence covered by the newest durable checkpoint.
func (m *Manager) CheckpointSeq() uint64 { return m.ckptSeq }

// Config returns the manager's effective (defaulted) configuration.
func (m *Manager) Config() Config { return m.cfg }

// Sync forces the WAL tail to stable storage regardless of policy.
func (m *Manager) Sync() error { return m.w.sync() }

// Close flushes and closes the WAL.
func (m *Manager) Close() error { return m.w.close() }

// Abandon releases the WAL file handle without flushing: the file-handle
// hygiene of a simulated kill, leaving the on-disk state exactly as the
// crash left it. The kill/recover harness calls it on pipelines it drops.
func (m *Manager) Abandon() {
	if m.w.f != nil {
		// saga:allow errcheck-durable -- Abandon simulates a kill: losing unflushed data is the point.
		m.w.f.Close()
		m.w.f = nil
	}
}
