package durable

import (
	"math"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"sagabench/internal/compute"
	"sagabench/internal/graph"
)

func TestCheckpointRoundtrip(t *testing.T) {
	cases := []*Checkpoint{
		{Seq: 0, NumNodes: 0},
		{Seq: 7, Directed: true, NumNodes: 4, Edges: []graph.Edge{
			{Src: 0, Dst: 1, Weight: 1}, {Src: 2, Dst: 3, Weight: 2.5},
		}},
		{Seq: 42, Directed: true, NumNodes: 3,
			Edges: []graph.Edge{{Src: 0, Dst: 2, Weight: 0.25}},
			Engine: &compute.State{
				Values:  []float64{0, 1.5, math.Inf(1)},
				LastN:   3,
				Pending: []graph.NodeID{1, 2},
			}},
		{Seq: 9, NumNodes: 1, Engine: &compute.State{LastN: 1}},
	}
	for _, cp := range cases {
		got, err := decodeCheckpoint(encodeCheckpoint(cp))
		if err != nil {
			t.Fatalf("seq %d: %v", cp.Seq, err)
		}
		if !reflect.DeepEqual(got, cp) {
			t.Fatalf("roundtrip: got %+v want %+v", got, cp)
		}
	}
}

func TestCheckpointDecodeErrors(t *testing.T) {
	good := encodeCheckpoint(&Checkpoint{Seq: 3, NumNodes: 2,
		Edges: []graph.Edge{{Src: 0, Dst: 1, Weight: 1}}})
	if _, err := decodeCheckpoint([]byte("notaheader")); err == nil {
		t.Error("bad magic should fail")
	}
	if _, err := decodeCheckpoint(good[:len(good)-3]); err == nil {
		t.Error("truncated body should fail")
	}
	flipped := append([]byte(nil), good...)
	flipped[len(flipped)-1] ^= 0x01
	if _, err := decodeCheckpoint(flipped); err == nil {
		t.Error("checksum mismatch should fail")
	}
	trailing := append(append([]byte(nil), good...), 0xFF)
	if _, err := decodeCheckpoint(trailing); err == nil {
		t.Error("trailing bytes should fail")
	}
}

// TestCheckpointCorruptFallback corrupts the newest checkpoint on disk
// and checks recovery falls back to the older valid one — the reason
// gcCheckpoints keeps a spare.
func TestCheckpointCorruptFallback(t *testing.T) {
	dir := t.TempDir()
	if cp, err := loadLatestCheckpoint(dir); cp != nil || err != nil {
		t.Fatalf("empty dir: cp=%v err=%v", cp, err)
	}
	old := &Checkpoint{Seq: 5, NumNodes: 2, Edges: []graph.Edge{{Src: 0, Dst: 1, Weight: 1}}}
	if err := writeCheckpointFile(dir, old, Config{}, RetryPolicy{}); err != nil {
		t.Fatal(err)
	}
	if err := writeCheckpointFile(dir, &Checkpoint{Seq: 9, NumNodes: 3}, Config{}, RetryPolicy{}); err != nil {
		t.Fatal(err)
	}
	newest := ckptPath(dir, 9)
	data, err := os.ReadFile(newest)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-1] ^= 0x01
	if err := os.WriteFile(newest, data, 0o644); err != nil {
		t.Fatal(err)
	}
	cp, err := loadLatestCheckpoint(dir)
	if err != nil {
		t.Fatal(err)
	}
	if cp == nil || cp.Seq != 5 {
		t.Fatalf("fallback checkpoint: got %+v, want seq 5", cp)
	}
	// With the fallback gone too, recovery must surface the corruption.
	os.Remove(ckptPath(dir, 5))
	if _, err := loadLatestCheckpoint(dir); err == nil {
		t.Fatal("all-corrupt checkpoints should error, not silently restart empty")
	}
}

// TestManagerRecoverProtocol drives the full protocol — append, stale
// checkpoint, more appends, one quarantine tombstone — and checks a fresh
// manager reconstructs exactly the uncovered, unskipped tail.
func TestManagerRecoverProtocol(t *testing.T) {
	for _, pol := range policies {
		t.Run(string(pol), func(t *testing.T) {
			dir := t.TempDir()
			m, err := Open(Config{Dir: dir, Fsync: pol}, nil)
			if err != nil {
				t.Fatal(err)
			}
			for i := 0; i < 6; i++ {
				seq, err := m.Append(mkBatch(i, 2), nil)
				if err != nil {
					t.Fatal(err)
				}
				if seq != uint64(i)+1 {
					t.Fatalf("append %d got seq %d", i, seq)
				}
			}
			if err := m.WriteCheckpoint(&Checkpoint{Seq: 3, NumNodes: 8,
				Edges: []graph.Edge{{Src: 0, Dst: 1, Weight: 1}}}); err != nil {
				t.Fatal(err)
			}
			if err := m.AppendSkip(5); err != nil {
				t.Fatal(err)
			}
			if err := m.Close(); err != nil {
				t.Fatal(err)
			}

			m2, err := Open(Config{Dir: dir, Fsync: pol}, nil)
			if err != nil {
				t.Fatal(err)
			}
			cp, tail, err := m2.Recover()
			if err != nil {
				t.Fatal(err)
			}
			if cp == nil || cp.Seq != 3 {
				t.Fatalf("checkpoint: %+v, want seq 3", cp)
			}
			var seqs []uint64
			for _, r := range tail {
				seqs = append(seqs, r.Seq)
			}
			// Past the checkpoint (4,5,6) minus the tombstoned 5.
			if !reflect.DeepEqual(seqs, []uint64{4, 6}) {
				t.Fatalf("replay tail %v, want [4 6]", seqs)
			}
			if m2.LastSeq() != 6 || m2.CheckpointSeq() != 3 {
				t.Fatalf("LastSeq=%d CheckpointSeq=%d", m2.LastSeq(), m2.CheckpointSeq())
			}
			if seq, err := m2.Append(mkBatch(6, 1), nil); err != nil || seq != 7 {
				t.Fatalf("post-recovery append: seq %d err %v", seq, err)
			}
			m2.Close()
		})
	}
}

// TestManagerRecoverTornTail tears the WAL after an unsynced abandon and
// checks the lost record simply vanishes: recovery resumes one sequence
// earlier and re-appending reuses the freed number.
func TestManagerRecoverTornTail(t *testing.T) {
	dir := t.TempDir()
	m, err := Open(Config{Dir: dir, Fsync: FsyncAlways}, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if _, err := m.Append(mkBatch(i, 2), nil); err != nil {
			t.Fatal(err)
		}
	}
	m.Abandon()
	if n, err := TornTail(dir, 3); err != nil || n == 0 {
		t.Fatalf("TornTail: n=%d err=%v", n, err)
	}
	m2, err := Open(Config{Dir: dir, Fsync: FsyncAlways}, nil)
	if err != nil {
		t.Fatal(err)
	}
	cp, tail, err := m2.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if cp != nil {
		t.Fatalf("no checkpoint was written, got %+v", cp)
	}
	if len(tail) != 4 || m2.LastSeq() != 4 {
		t.Fatalf("after torn tail: %d records, LastSeq %d; want 4", len(tail), m2.LastSeq())
	}
	if seq, err := m2.Append(mkBatch(9, 1), nil); err != nil || seq != 5 {
		t.Fatalf("re-append: seq %d err %v", seq, err)
	}
	m2.Close()
}

// TestCrashMidCheckpoint kills the manager between the checkpoint temp
// write and the rename: the orphan .tmp must be ignored and removed, and
// recovery must use the previous checkpoint.
func TestCrashMidCheckpoint(t *testing.T) {
	dir := t.TempDir()
	m, err := Open(Config{Dir: dir, Fsync: FsyncAlways,
		Crash: CrashAt(CrashMidCheckpoint, 2)}, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if _, err := m.Append(mkBatch(i, 2), nil); err != nil {
			t.Fatal(err)
		}
	}
	if err := m.WriteCheckpoint(&Checkpoint{Seq: 2, NumNodes: 4}); err != nil {
		t.Fatal(err)
	}
	expectCrash(t, CrashMidCheckpoint, func() {
		m.WriteCheckpoint(&Checkpoint{Seq: 4, NumNodes: 6})
	})
	m.Abandon()
	if _, err := os.Stat(ckptPath(dir, 4) + ".tmp"); err != nil {
		t.Fatalf("crash should leave the orphan temp file: %v", err)
	}

	m2, err := Open(Config{Dir: dir, Fsync: FsyncAlways}, nil)
	if err != nil {
		t.Fatal(err)
	}
	ents, _ := os.ReadDir(dir)
	for _, e := range ents {
		if strings.HasSuffix(e.Name(), ".tmp") {
			t.Fatalf("Open left stale temp %s", e.Name())
		}
	}
	cp, tail, err := m2.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if cp == nil || cp.Seq != 2 {
		t.Fatalf("recovery used %+v, want the pre-crash checkpoint at seq 2", cp)
	}
	if len(tail) != 2 {
		t.Fatalf("replay tail has %d records, want seqs 3 and 4", len(tail))
	}
	m2.Close()
}

// TestQuarantineFiles checks poison files land in the durability
// directory under their sequence number, and that validation rejects
// (seq 0) never clobber each other.
func TestQuarantineFiles(t *testing.T) {
	dir := t.TempDir()
	m, err := Open(Config{Dir: dir, Fsync: FsyncNever}, nil)
	if err != nil {
		t.Fatal(err)
	}
	meta := PoisonMeta{Directed: true, Threads: 1, DS: "adjshared", Alg: "pr", Model: compute.INC}
	p1, err := m.Quarantine(meta, 7, "boom", mkBatch(0, 2), nil)
	if err != nil {
		t.Fatal(err)
	}
	if filepath.Base(p1) != "batch-000007.poison" {
		t.Fatalf("quarantine path %s", p1)
	}
	p2, err := m.Quarantine(meta, 0, "invalid", mkBatch(0, 1), nil)
	if err != nil {
		t.Fatal(err)
	}
	p3, err := m.Quarantine(meta, 0, "invalid again", mkBatch(1, 1), nil)
	if err != nil {
		t.Fatal(err)
	}
	if p2 == p3 {
		t.Fatalf("validation rejects clobbered the same file %s", p2)
	}
	m.Close()
}

func TestValidateBatch(t *testing.T) {
	ok := graph.Batch{{Src: 0, Dst: 1, Weight: 1}}
	if err := ValidateBatch(ok, ok, 0); err != nil {
		t.Fatalf("valid batch rejected: %v", err)
	}
	bad := []graph.Batch{
		{{Src: 0, Dst: 1, Weight: graph.Weight(math.NaN())}},
		{{Src: 0, Dst: 1, Weight: graph.Weight(math.Inf(1))}},
		{{Src: 0, Dst: 1, Weight: -1}},
	}
	for i, b := range bad {
		if err := ValidateBatch(b, nil, 0); err == nil {
			t.Errorf("bad batch %d accepted", i)
		}
		if err := ValidateBatch(nil, b, 0); err == nil {
			t.Errorf("bad delete batch %d accepted", i)
		}
	}
	if err := ValidateBatch(graph.Batch{{Src: 100, Dst: 1, Weight: 1}}, nil, 50); err == nil {
		t.Error("vertex beyond MaxNodeID accepted")
	}
}

// expectCrash runs fn and asserts it panics with a simulated crash at the
// given point.
func expectCrash(t *testing.T, point CrashPoint, fn func()) {
	t.Helper()
	defer func() {
		r := recover()
		if r == nil {
			t.Fatalf("no crash fired at %s", point)
		}
		c, ok := AsCrash(r)
		if !ok {
			panic(r)
		}
		if c.Point != point {
			t.Fatalf("crashed at %s, want %s", c.Point, point)
		}
	}()
	fn()
}
