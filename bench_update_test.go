package sagabench_test

import (
	"testing"

	"sagabench/internal/ds"
	_ "sagabench/internal/ds/all"
	"sagabench/internal/gen"
	"sagabench/internal/graph"
)

// The update-rate race: per-structure ingest throughput isolated from the
// compute phase, the metric GraphTango's degree-adaptive format is built
// to win. Every registered structure runs on both degree regimes (lj's
// mild power law vs wiki's single 45%-share hub) and both stream shapes
// (insert-only and a mixed stream that deletes a quarter of the previous
// batch); BENCH_update.json checks in one measured run and cmd/benchgate
// gates changes against it.
//
// Each iteration builds the graph from scratch — update cost is dominated
// by the steady-state degree distribution the stream converges to, and a
// fresh build per iteration keeps iterations identical (no unbounded
// growth across b.N).
func benchUpdateRate(b *testing.B, dsName, dataset string, mixed bool) {
	spec := gen.MustDataset(dataset, gen.ProfileDefault)
	edges := spec.Generate(7)
	batches := graph.Batches(edges, spec.BatchSize)
	// Deterministic mixed schedule: batch i deletes every 4th edge of
	// batch i-1, so the structure sees interleaved growth and trimming at
	// the same hot vertices the inserts target.
	var dels []graph.Batch
	if mixed {
		dels = make([]graph.Batch, len(batches))
		for i := 1; i < len(batches); i++ {
			prev := batches[i-1]
			d := make(graph.Batch, 0, (len(prev)+3)/4)
			for j := 0; j < len(prev); j += 4 {
				d = append(d, prev[j])
			}
			dels[i] = d
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g := ds.MustNew(dsName, ds.Config{
			Directed:     spec.Directed,
			Threads:      2,
			MaxNodesHint: spec.NumNodes,
		})
		for bi, batch := range batches {
			g.Update(batch)
			if mixed && len(dels[bi]) > 0 {
				if err := g.(ds.Deleter).Delete(dels[bi]); err != nil {
					b.Fatal(err)
				}
			}
		}
	}
	b.SetBytes(int64(len(edges)) * 12)
}

func benchUpdateRateAll(b *testing.B, dataset string, mixed bool) {
	for _, name := range ds.Names() {
		b.Run(name, func(b *testing.B) { benchUpdateRate(b, name, dataset, mixed) })
	}
}

func BenchmarkUpdateRateUniformInsert(b *testing.B)  { benchUpdateRateAll(b, "lj", false) }
func BenchmarkUpdateRateUniformMixed(b *testing.B)   { benchUpdateRateAll(b, "lj", true) }
func BenchmarkUpdateRateHubHeavyInsert(b *testing.B) { benchUpdateRateAll(b, "wiki", false) }
func BenchmarkUpdateRateHubHeavyMixed(b *testing.B)  { benchUpdateRateAll(b, "wiki", true) }
